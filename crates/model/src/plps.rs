//! PLPS v2: the page-aligned, mmap-able model snapshot layout.
//!
//! The legacy PLPM/PLPE codecs ([`crate::snapshot`]) stream every f64
//! through a cursor into owned buffers — fine for training checkpoints, but
//! a serving fleet wants many processes sharing one read-only model
//! generation and swapping to the next without a restart. PLPS lays tensors
//! out so a mapped file *is* the in-memory representation:
//!
//! ```text
//! offset   size  field
//! 0        4     magic  "PLPS"
//! 4        2     version (little-endian u16) = 1
//! 6        2     flags   (bit 0: rows are unit-normalised)
//! 8        8     generation id (u64)
//! 16       4     tensor count (u32, ≤ 127)
//! 20       32×n  tensor table: kind u16 · pad u16 · rows u64 · cols u64
//!                              · byte offset u64 · body CRC-32 u32
//! 4092     4     header CRC-32 over bytes [0, 4092)
//! 4096     …     tensor bodies: contiguous little-endian f64, each body
//!                starting at a 4096-byte-aligned offset
//! ```
//!
//! Alignment/endianness contract: bodies are little-endian f64 at offsets
//! that are multiples of 4096, and `mmap` returns page-aligned bases, so on
//! a little-endian 64-bit host a [`plp_mmap::MappedSlice`] over a body is
//! directly usable as `&[f64]` — zero decode, zero copy, page cache shared
//! across processes. On big-endian or non-Unix hosts [`PlpsSnapshot::open`]
//! falls back to an owned read + bulk decode that is asserted bit-identical
//! by the test suite.
//!
//! Integrity is two-level so that *opening* stays O(header): the header CRC
//! is always verified, while per-tensor body CRCs are verified by
//! [`PlpsSnapshot::verify_bodies`] — the generation watcher runs it (plus a
//! finiteness sweep) on every candidate before swapping traffic onto it,
//! and publishers write files atomically (tmp + `rename(2)`), so a file
//! named by the `CURRENT` pointer is never truncated or rewritten in place.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use plp_data::frame::{checked_frame_len, crc32};
use plp_linalg::Matrix;
use plp_mmap::{MappedSlice, Mmap};

use crate::error::{ModelError, SnapshotError};
use crate::params::ModelParams;
use crate::recommender::Recommender;

/// Magic bytes opening every PLPS file.
pub const MAGIC: &[u8; 4] = b"PLPS";
/// Current layout version.
pub const VERSION: u16 = 1;
/// Bodies (and the header block) start at multiples of this.
pub const PAGE_ALIGN: usize = 4096;
/// Flag bit 0: every tensor row is unit-ℓ2-normalised (a deployment bundle
/// written from a [`Recommender`]); the zero-copy serve path requires it.
pub const FLAG_NORMALIZED: u16 = 1;

/// Tensor kind: the embedding matrix `W`.
pub const KIND_EMBEDDING: u16 = 0;
/// Tensor kind: the context matrix `W'`.
pub const KIND_CONTEXT: u16 = 1;
/// Tensor kind: the output bias vector `B'` (stored as an `L × 1` body).
pub const KIND_BIAS: u16 = 2;

const HEADER_CRC_OFFSET: usize = PAGE_ALIGN - 4;
const TABLE_OFFSET: usize = 20;
const ENTRY_BYTES: usize = 32;
/// Upper bound on tensors per file, fixed by the header block size.
pub const MAX_TENSORS: usize = (HEADER_CRC_OFFSET - TABLE_OFFSET) / ENTRY_BYTES;

/// One parsed tensor-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    kind: u16,
    rows: usize,
    cols: usize,
    offset: usize,
    crc: u32,
}

impl Entry {
    fn elems(&self) -> usize {
        self.rows * self.cols
    }

    fn byte_len(&self) -> usize {
        self.elems() * 8
    }
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("2-byte slice"))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Parses and validates the fixed header block (magic, version, header CRC,
/// table bounds and alignment) against the total file length. Body CRCs are
/// *not* checked here — see [`PlpsSnapshot::verify_bodies`].
fn parse_header(bytes: &[u8]) -> Result<(u64, u16, Vec<Entry>), SnapshotError> {
    if bytes.len() < PAGE_ALIGN {
        return Err(SnapshotError::TruncatedHeader {
            what: "PLPS header block",
        });
    }
    if &bytes[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u16(bytes, 4);
    if version != VERSION {
        return Err(SnapshotError::BadVersion {
            got: u32::from(version),
        });
    }
    let stored_crc = read_u32(bytes, HEADER_CRC_OFFSET);
    if crc32(&bytes[..HEADER_CRC_OFFSET]) != stored_crc {
        return Err(SnapshotError::BadCrc {
            what: "PLPS header",
        });
    }
    let flags = read_u16(bytes, 6);
    let generation = read_u64(bytes, 8);
    let count = read_u32(bytes, 16) as usize;
    if count > MAX_TENSORS {
        return Err(SnapshotError::Inconsistent {
            what: "tensor count over table capacity",
        });
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = TABLE_OFFSET + i * ENTRY_BYTES;
        let kind = read_u16(bytes, at);
        let rows = read_u64(bytes, at + 4);
        let cols = read_u64(bytes, at + 12);
        let offset = read_u64(bytes, at + 20);
        let crc = read_u32(bytes, at + 28);
        let rows = checked_frame_len(rows).ok_or(SnapshotError::OverCeiling {
            what: "tensor rows",
        })?;
        let cols = checked_frame_len(cols).ok_or(SnapshotError::OverCeiling {
            what: "tensor cols",
        })?;
        let byte_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .and_then(|n| checked_frame_len(n as u64))
            .ok_or(SnapshotError::OverCeiling {
                what: "tensor body",
            })?;
        let offset = usize::try_from(offset).map_err(|_| SnapshotError::OverCeiling {
            what: "tensor offset",
        })?;
        if offset < PAGE_ALIGN || offset % PAGE_ALIGN != 0 {
            return Err(SnapshotError::Inconsistent {
                what: "tensor body offset not page-aligned",
            });
        }
        let end = offset
            .checked_add(byte_len)
            .ok_or(SnapshotError::OverCeiling { what: "tensor end" })?;
        if end > bytes.len() {
            return Err(SnapshotError::TruncatedBody {
                what: "tensor body past end of file",
            });
        }
        entries.push(Entry {
            kind,
            rows,
            cols,
            offset,
            crc,
        });
    }
    Ok((generation, flags, entries))
}

/// Raw bytes of a snapshot: a shared mapping or an owned buffer.
#[derive(Debug, Clone)]
enum Source {
    Mapped(Arc<Mmap>),
    Owned(Arc<Vec<u8>>),
}

impl Source {
    fn bytes(&self) -> &[u8] {
        match self {
            Source::Mapped(m) => m.as_bytes(),
            Source::Owned(v) => v,
        }
    }
}

/// An opened PLPS snapshot: validated header plus the raw bytes, either
/// memory-mapped (zero-copy) or owned (fallback / big-endian hosts).
#[derive(Debug, Clone)]
pub struct PlpsSnapshot {
    generation: u64,
    flags: u16,
    entries: Vec<Entry>,
    source: Source,
}

impl PlpsSnapshot {
    /// Opens a snapshot by mmapping it — tensor accessors then return
    /// matrices whose storage *is* the mapped file.
    ///
    /// # Errors
    /// [`ModelError::Io`] if the file cannot be opened or mapped (including
    /// non-Unix hosts), [`ModelError::Snapshot`] on a malformed header.
    pub fn open_mapped(path: &Path) -> Result<Self, ModelError> {
        let map = Mmap::map(path).map_err(|e| ModelError::Io {
            message: format!("mmap {}: {e}", path.display()),
        })?;
        let (generation, flags, entries) = parse_header(map.as_bytes())?;
        Ok(PlpsSnapshot {
            generation,
            flags,
            entries,
            source: Source::Mapped(Arc::new(map)),
        })
    }

    /// Opens a snapshot by reading it into an owned buffer (the fallback
    /// path; tensor accessors bulk-decode on access).
    ///
    /// # Errors
    /// [`ModelError::Io`] on read failure, [`ModelError::Snapshot`] on a
    /// malformed header.
    pub fn open_owned(path: &Path) -> Result<Self, ModelError> {
        let bytes = fs::read(path).map_err(|e| ModelError::Io {
            message: format!("read {}: {e}", path.display()),
        })?;
        let (generation, flags, entries) = parse_header(&bytes)?;
        Ok(PlpsSnapshot {
            generation,
            flags,
            entries,
            source: Source::Owned(Arc::new(bytes)),
        })
    }

    /// Opens a snapshot zero-copy where possible: tries [`Self::open_mapped`]
    /// and falls back to [`Self::open_owned`] when mapping is unavailable.
    /// A malformed file is rejected identically on both paths (same header
    /// validation), so the fallback never masks corruption.
    ///
    /// # Errors
    /// As [`Self::open_owned`].
    pub fn open(path: &Path) -> Result<Self, ModelError> {
        match Self::open_mapped(path) {
            Ok(s) => Ok(s),
            // Header/CRC damage is definitive — don't reopen, report it.
            Err(e @ ModelError::Snapshot(_)) => Err(e),
            Err(_) => Self::open_owned(path),
        }
    }

    /// The generation id stamped in the header.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Header flags ([`FLAG_NORMALIZED`] etc.).
    pub fn flags(&self) -> u16 {
        self.flags
    }

    /// `true` when backed by a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, Source::Mapped(_))
    }

    /// Number of tensors in the file.
    pub fn tensor_count(&self) -> usize {
        self.entries.len()
    }

    /// Verifies every tensor body against its stored CRC-32. Opening only
    /// checks the header (keeping mapped opens O(header)); the generation
    /// watcher runs this on every candidate before swapping onto it.
    ///
    /// # Errors
    /// [`SnapshotError::BadCrc`] naming the tensor body that failed.
    pub fn verify_bodies(&self) -> Result<(), ModelError> {
        let bytes = self.source.bytes();
        for e in &self.entries {
            let body = &bytes[e.offset..e.offset + e.byte_len()];
            if crc32(body) != e.crc {
                let what = match e.kind {
                    KIND_EMBEDDING => "embedding body",
                    KIND_CONTEXT => "context body",
                    KIND_BIAS => "bias body",
                    _ => "tensor body",
                };
                return Err(SnapshotError::BadCrc { what }.into());
            }
        }
        Ok(())
    }

    /// Full candidate validation: body CRCs plus a finiteness sweep over
    /// every tensor. This is what stands between an untrusted `gen-*.plps`
    /// file and live traffic.
    ///
    /// # Errors
    /// [`ModelError::Snapshot`] on CRC mismatch, [`ModelError::NonFinite`]
    /// if any element is NaN/∞.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.verify_bodies()?;
        for e in &self.entries {
            let m = self.matrix_at(e)?;
            if !m.all_finite() {
                return Err(ModelError::NonFinite { at: "PLPS tensor" });
            }
        }
        Ok(())
    }

    fn entry(&self, kind: u16) -> Result<&Entry, ModelError> {
        self.entries.iter().find(|e| e.kind == kind).ok_or_else(|| {
            SnapshotError::Inconsistent {
                what: "requested tensor kind absent",
            }
            .into()
        })
    }

    /// Materialises the tensor at `e` — as a mapped view when the source is
    /// mapped (zero-copy), otherwise by bulk-decoding the owned bytes.
    fn matrix_at(&self, e: &Entry) -> Result<Matrix, ModelError> {
        match &self.source {
            Source::Mapped(map) => {
                match MappedSlice::new(Arc::clone(map), e.offset, e.elems()) {
                    Ok(view) => Matrix::from_mapped(e.rows, e.cols, view).map_err(ModelError::from),
                    // Big-endian host or (impossibly, given parse_header)
                    // out-of-range view: decode the mapped bytes as owned.
                    Err(_) => decode_body(self.source.bytes(), e),
                }
            }
            Source::Owned(bytes) => decode_body(bytes, e),
        }
    }

    /// The tensor of the given kind as a matrix.
    ///
    /// # Errors
    /// [`SnapshotError::Inconsistent`] when the kind is absent.
    pub fn matrix(&self, kind: u16) -> Result<Matrix, ModelError> {
        self.matrix_at(self.entry(kind)?)
    }

    /// The embedding tensor.
    ///
    /// # Errors
    /// As [`Self::matrix`].
    pub fn embedding(&self) -> Result<Matrix, ModelError> {
        self.matrix(KIND_EMBEDDING)
    }

    /// The bias vector (`L × 1` tensor).
    ///
    /// # Errors
    /// As [`Self::matrix`].
    pub fn bias(&self) -> Result<Vec<f64>, ModelError> {
        let e = self.entry(KIND_BIAS)?;
        if e.cols != 1 {
            return Err(SnapshotError::Inconsistent {
                what: "bias tensor not a column vector",
            }
            .into());
        }
        Ok(self.matrix_at(e)?.as_slice().to_vec())
    }

    /// Reassembles full model parameters from a [`write_params`] snapshot.
    ///
    /// # Errors
    /// Missing tensors or mismatched shapes yield
    /// [`SnapshotError::Inconsistent`].
    pub fn params(&self) -> Result<ModelParams, ModelError> {
        let embedding = self.embedding()?;
        let context = self.matrix(KIND_CONTEXT)?;
        let bias = self.bias()?;
        if embedding.rows() != context.rows()
            || embedding.cols() != context.cols()
            || bias.len() != embedding.rows()
        {
            return Err(SnapshotError::Inconsistent {
                what: "snapshot tensor shapes",
            }
            .into());
        }
        Ok(ModelParams {
            embedding,
            context,
            bias,
        })
    }

    /// Builds the serving recommender straight over the stored embedding —
    /// zero-copy when mapped. Requires the [`FLAG_NORMALIZED`] flag (the
    /// rows were normalised by the publisher); validation of the bytes
    /// themselves is the caller's job via [`Self::validate`], which the
    /// generation watcher performs before any candidate reaches traffic.
    ///
    /// # Errors
    /// [`SnapshotError::Inconsistent`] when the bundle is not flagged
    /// normalised.
    pub fn recommender(&self) -> Result<Recommender, ModelError> {
        if self.flags & FLAG_NORMALIZED == 0 {
            return Err(SnapshotError::Inconsistent {
                what: "bundle not flagged normalised",
            }
            .into());
        }
        Ok(Recommender::from_prenormalized(self.embedding()?))
    }
}

/// Bulk-decodes a tensor body from raw bytes into an owned matrix.
fn decode_body(bytes: &[u8], e: &Entry) -> Result<Matrix, ModelError> {
    let body = &bytes[e.offset..e.offset + e.byte_len()];
    let mut v = Vec::with_capacity(e.elems());
    v.extend(
        body.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
    );
    Matrix::from_vec(e.rows, e.cols, v).map_err(ModelError::from)
}

/// Encodes tensors into a complete PLPS byte image.
fn encode(tensors: &[(u16, usize, usize, &[f64])], generation: u64, flags: u16) -> Vec<u8> {
    assert!(tensors.len() <= MAX_TENSORS, "tensor table overflow");
    let mut total = PAGE_ALIGN;
    let mut offsets = Vec::with_capacity(tensors.len());
    for &(_, rows, cols, data) in tensors {
        debug_assert_eq!(rows * cols, data.len());
        offsets.push(total);
        // Next body starts at the next page boundary after this one.
        let body = data.len() * 8;
        total += body.div_ceil(PAGE_ALIGN) * PAGE_ALIGN;
    }
    // The file ends right after the last body — no tail padding.
    let file_len = match tensors.last() {
        Some(&(_, _, _, data)) => offsets[tensors.len() - 1] + data.len() * 8,
        None => PAGE_ALIGN,
    };
    let mut out = vec![0u8; file_len.max(PAGE_ALIGN)];
    out[0..4].copy_from_slice(MAGIC);
    out[4..6].copy_from_slice(&VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&flags.to_le_bytes());
    out[8..16].copy_from_slice(&generation.to_le_bytes());
    out[16..20].copy_from_slice(&(tensors.len() as u32).to_le_bytes());
    for (i, &(kind, rows, cols, data)) in tensors.iter().enumerate() {
        let offset = offsets[i];
        let body_len = data.len() * 8;
        {
            let body = &mut out[offset..offset + body_len];
            for (dst, x) in body.chunks_exact_mut(8).zip(data) {
                dst.copy_from_slice(&x.to_le_bytes());
            }
        }
        let crc = crc32(&out[offset..offset + body_len]);
        let at = TABLE_OFFSET + i * ENTRY_BYTES;
        out[at..at + 2].copy_from_slice(&kind.to_le_bytes());
        out[at + 4..at + 12].copy_from_slice(&(rows as u64).to_le_bytes());
        out[at + 12..at + 20].copy_from_slice(&(cols as u64).to_le_bytes());
        out[at + 20..at + 28].copy_from_slice(&(offset as u64).to_le_bytes());
        out[at + 28..at + 32].copy_from_slice(&crc.to_le_bytes());
    }
    let header_crc = crc32(&out[..HEADER_CRC_OFFSET]);
    out[HEADER_CRC_OFFSET..PAGE_ALIGN].copy_from_slice(&header_crc.to_le_bytes());
    out
}

/// Atomically writes `bytes` to `path`: tmp file in the same directory,
/// fsync, rename over the target, best-effort directory fsync. Readers
/// therefore only ever observe a complete old file or a complete new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ModelError> {
    let io_err = |e: std::io::Error| ModelError::Io {
        message: format!("{}: {e}", path.display()),
    };
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes a serving deployment bundle: the (already unit-normalised)
/// embedding only, flagged [`FLAG_NORMALIZED`]. Pass
/// [`Recommender::embedding`] (or [`ModelParams::deployable_embedding`]) —
/// the bytes are written verbatim, so a mapped reader serves bit-identical
/// scores to the publishing process.
///
/// # Errors
/// [`ModelError::Io`] on filesystem failures.
pub fn write_deployable(
    path: &Path,
    embedding: &Matrix,
    generation: u64,
) -> Result<(), ModelError> {
    let image = encode(
        &[(
            KIND_EMBEDDING,
            embedding.rows(),
            embedding.cols(),
            embedding.as_slice(),
        )],
        generation,
        FLAG_NORMALIZED,
    );
    write_atomic(path, &image)
}

/// Writes a full-parameter PLPS snapshot (server-side use; not flagged
/// normalised).
///
/// # Errors
/// [`ModelError::Io`] on filesystem failures.
pub fn write_params(path: &Path, params: &ModelParams, generation: u64) -> Result<(), ModelError> {
    let image = encode(
        &[
            (
                KIND_EMBEDDING,
                params.embedding.rows(),
                params.embedding.cols(),
                params.embedding.as_slice(),
            ),
            (
                KIND_CONTEXT,
                params.context.rows(),
                params.context.cols(),
                params.context.as_slice(),
            ),
            (KIND_BIAS, params.bias.len(), 1, params.bias.as_slice()),
        ],
        generation,
        0,
    );
    write_atomic(path, &image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("plp_plps_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn params(vocab: usize, dim: usize) -> ModelParams {
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = ModelParams::init(&mut rng, vocab, dim).unwrap();
        p.bias[vocab / 2] = -0.75;
        p
    }

    #[test]
    fn deployable_round_trip_mapped_and_owned_bit_identical() {
        let p = params(9, 5);
        let rec = Recommender::new(&p);
        let path = tmp("deploy.plps");
        write_deployable(&path, rec.embedding(), 42).unwrap();

        let mapped = PlpsSnapshot::open_mapped(&path).unwrap();
        let owned = PlpsSnapshot::open_owned(&path).unwrap();
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        for s in [&mapped, &owned] {
            assert_eq!(s.generation(), 42);
            assert_eq!(s.flags() & FLAG_NORMALIZED, FLAG_NORMALIZED);
            s.validate().unwrap();
        }
        let em = mapped.embedding().unwrap();
        let eo = owned.embedding().unwrap();
        assert!(em.is_mapped());
        assert!(!eo.is_mapped());
        assert_eq!(em.as_slice().len(), rec.embedding().as_slice().len());
        for ((a, b), c) in em
            .as_slice()
            .iter()
            .zip(eo.as_slice())
            .zip(rec.embedding().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
        // The zero-copy recommender path works off both sources.
        let rm = mapped.recommender().unwrap();
        let ro = owned.recommender().unwrap();
        let top_m = rm.recommend(&[1, 3], 4).unwrap();
        let top_o = ro.recommend(&[1, 3], 4).unwrap();
        let top_ref = rec.recommend(&[1, 3], 4).unwrap();
        assert_eq!(top_m, top_ref);
        assert_eq!(top_o, top_ref);
    }

    #[test]
    fn full_params_round_trip() {
        let p = params(7, 4);
        let path = tmp("full.plps");
        write_params(&path, &p, 7).unwrap();
        let snap = PlpsSnapshot::open(&path).unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.tensor_count(), 3);
        let back = snap.params().unwrap();
        assert_eq!(back, p);
        // A full snapshot is not a deployment bundle.
        assert!(matches!(
            snap.recommender().unwrap_err(),
            ModelError::Snapshot(SnapshotError::Inconsistent { .. })
        ));
    }

    #[test]
    fn bodies_are_page_aligned() {
        let p = params(13, 3);
        let path = tmp("aligned.plps");
        write_params(&path, &p, 1).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let snap = PlpsSnapshot::open_owned(&path).unwrap();
        for e in &snap.entries {
            assert_eq!(e.offset % PAGE_ALIGN, 0);
            assert!(e.offset >= PAGE_ALIGN);
            assert!(e.offset + e.byte_len() <= bytes.len());
        }
        // File ends exactly at the last body's end.
        let last = snap.entries.iter().map(|e| e.offset + e.byte_len()).max();
        assert_eq!(Some(bytes.len()), last);
    }

    #[test]
    fn header_damage_is_rejected_with_typed_errors() {
        let p = params(6, 3);
        let path = tmp("damage.plps");
        write_deployable(&path, Recommender::new(&p).embedding(), 3).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let reopen = |bytes: &[u8], name: &str| {
            let path = tmp(name);
            std::fs::write(&path, bytes).unwrap();
            (
                PlpsSnapshot::open_mapped(&path),
                PlpsSnapshot::open_owned(&path),
            )
        };

        // Bad magic.
        let mut raw = pristine.clone();
        raw[0] = b'X';
        let (m, o) = reopen(&raw, "magic.plps");
        for r in [m, o] {
            assert!(matches!(
                r.unwrap_err(),
                ModelError::Snapshot(SnapshotError::BadMagic)
            ));
        }

        // Bad version.
        let mut raw = pristine.clone();
        raw[4] = 99;
        let (m, o) = reopen(&raw, "version.plps");
        for r in [m, o] {
            assert!(matches!(
                r.unwrap_err(),
                ModelError::Snapshot(SnapshotError::BadVersion { got: 99 })
            ));
        }

        // Flipped flags byte breaks the header CRC.
        let mut raw = pristine.clone();
        raw[6] ^= 0xFF;
        let (m, o) = reopen(&raw, "crc.plps");
        for r in [m, o] {
            assert!(matches!(
                r.unwrap_err(),
                ModelError::Snapshot(SnapshotError::BadCrc { .. })
            ));
        }

        // Truncated header block.
        let (m, o) = reopen(&pristine[..100], "short.plps");
        for r in [m, o] {
            assert!(matches!(
                r.unwrap_err(),
                ModelError::Snapshot(SnapshotError::TruncatedHeader { .. })
            ));
        }

        // Truncated body: header parses, the table points past EOF.
        let (m, o) = reopen(&pristine[..PAGE_ALIGN + 8], "truncbody.plps");
        for r in [m, o] {
            assert!(matches!(
                r.unwrap_err(),
                ModelError::Snapshot(SnapshotError::TruncatedBody { .. })
            ));
        }
    }

    #[test]
    fn body_corruption_caught_by_verify_not_open() {
        let p = params(8, 4);
        let path = tmp("bodyflip.plps");
        write_deployable(&path, Recommender::new(&p).embedding(), 5).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip one bit inside the first body f64.
        let flip = PAGE_ALIGN + 3;
        raw[flip] ^= 0x10;
        let path2 = tmp("bodyflip2.plps");
        std::fs::write(&path2, &raw).unwrap();
        let snap = PlpsSnapshot::open(&path2).unwrap(); // header still fine
        let err = snap.verify_bodies().unwrap_err();
        assert!(matches!(
            err,
            ModelError::Snapshot(SnapshotError::BadCrc {
                what: "embedding body"
            })
        ));
        assert!(snap.validate().is_err());
    }

    #[test]
    fn nan_smuggled_with_fixed_crc_fails_validate() {
        let p = params(5, 3);
        let path = tmp("nan.plps");
        write_deployable(&path, Recommender::new(&p).embedding(), 6).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[PAGE_ALIGN..PAGE_ALIGN + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        // Re-stamp the body CRC so only the finiteness sweep can catch it.
        let body_len = raw.len() - PAGE_ALIGN;
        let crc = crc32(&raw[PAGE_ALIGN..PAGE_ALIGN + body_len]);
        raw[TABLE_OFFSET + 28..TABLE_OFFSET + 32].copy_from_slice(&crc.to_le_bytes());
        let header_crc = crc32(&raw[..HEADER_CRC_OFFSET]);
        raw[HEADER_CRC_OFFSET..PAGE_ALIGN].copy_from_slice(&header_crc.to_le_bytes());
        let path2 = tmp("nan2.plps");
        std::fs::write(&path2, &raw).unwrap();
        let snap = PlpsSnapshot::open(&path2).unwrap();
        snap.verify_bodies().unwrap();
        assert!(matches!(
            snap.validate().unwrap_err(),
            ModelError::NonFinite { .. }
        ));
    }

    #[test]
    fn open_falls_back_to_owned_only_for_io_failures() {
        // A corrupt header must NOT be retried on the owned path as if the
        // mmap itself had failed.
        let path = tmp("fallback.plps");
        std::fs::write(&path, vec![0u8; 2 * PAGE_ALIGN]).unwrap();
        assert!(matches!(
            PlpsSnapshot::open(&path).unwrap_err(),
            ModelError::Snapshot(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            PlpsSnapshot::open(&tmp("missing.plps")).unwrap_err(),
            ModelError::Io { .. }
        ));
    }
}

#[cfg(test)]
mod corruption_props {
    //! Property tests: arbitrary truncation or bit damage must always
    //! surface as a typed error (or, for payload bits under a re-stamped
    //! CRC, be caught by `validate`) — never a panic, never a silent
    //! acceptance of damaged tensor bytes.

    use super::*;
    use crate::recommender::Recommender;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bundle_bytes(vocab: usize, dim: usize, generation: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(vocab as u64 * 131 + dim as u64);
        let p = ModelParams::init(&mut rng, vocab, dim).unwrap();
        encode(
            &[(
                KIND_EMBEDDING,
                vocab,
                dim,
                Recommender::new(&p).embedding().as_slice(),
            )],
            generation,
            FLAG_NORMALIZED,
        )
    }

    fn open_both(bytes: &[u8], name: u64) -> Vec<Result<PlpsSnapshot, ModelError>> {
        let path =
            std::env::temp_dir().join(format!("plp_plps_prop_{}_{name}.plps", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        let out = vec![
            PlpsSnapshot::open_mapped(&path),
            PlpsSnapshot::open_owned(&path),
        ];
        std::fs::remove_file(&path).ok();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn truncation_never_panics_and_never_validates(
            vocab in 2usize..9,
            dim in 1usize..5,
            cut_frac in 0usize..1000,
        ) {
            let bytes = bundle_bytes(vocab, dim, 1);
            let cut = cut_frac * bytes.len() / 1000;
            prop_assert!(cut < bytes.len());
            for r in open_both(&bytes[..cut], cut as u64) {
                match r {
                    // A cut inside the final page can leave whole tensors
                    // intact only if it lands exactly at the body end —
                    // but then it's not a truncation of the body, and
                    // validate() may legitimately pass. Anything else must
                    // fail either open or validate.
                    Ok(snap) => {
                        let end = snap.entries.iter().map(|e| e.offset + e.byte_len()).max();
                        prop_assert_eq!(end, Some(cut));
                    }
                    Err(ModelError::Snapshot(_)) | Err(ModelError::Io { .. }) => {}
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
            }
        }

        #[test]
        fn header_bit_flips_are_rejected(
            vocab in 2usize..9,
            dim in 1usize..5,
            at in 0usize..PAGE_ALIGN,
            bit in 0usize..8,
        ) {
            let mut bytes = bundle_bytes(vocab, dim, 2);
            bytes[at] ^= 1 << bit;
            for r in open_both(&bytes, (at * 8 + bit) as u64) {
                prop_assert!(
                    matches!(r, Err(ModelError::Snapshot(_))),
                    "flipped header byte {at} must reject, got {r:?}"
                );
            }
        }

        #[test]
        fn body_bit_flips_fail_crc_verification(
            vocab in 2usize..9,
            dim in 1usize..5,
            at_frac in 0usize..1000,
            bit in 0usize..8,
        ) {
            let mut bytes = bundle_bytes(vocab, dim, 3);
            let body_len = bytes.len() - PAGE_ALIGN;
            let at = PAGE_ALIGN + at_frac * body_len / 1000;
            bytes[at] ^= 1 << bit;
            for r in open_both(&bytes, (at * 8 + bit) as u64) {
                // Header untouched: open succeeds, verification must not.
                let snap = r.unwrap();
                prop_assert!(matches!(
                    snap.verify_bodies(),
                    Err(ModelError::Snapshot(SnapshotError::BadCrc { .. }))
                ));
            }
        }
    }
}
