//! Markov-chain next-location baselines (related work, §6).
//!
//! "MC-based methods utilize a per-user transition matrix comprised of
//! location-location transition probabilities computed from the historical
//! record of check-ins [62]" and "private location recommendation over
//! Markov Chains is studied in [63]: aggregate counts … are published as
//! differentially private statistics."
//!
//! Two recommenders are provided:
//!
//! * [`MarkovRecommender`] — a global order-1 transition model with a
//!   popularity fallback (the classical non-neural baseline),
//! * [`DpMarkovRecommender`] — the same model trained under **user-level
//!   ε-DP** by bounding each user's total contribution to the count matrix
//!   and perturbing every cell with Laplace noise calibrated to that bound
//!   (the Zhang–Ghinita–Chow style of private statistics release).
//!
//! Both produce a ranking for a recent-check-in sequence via the
//! [`RankLocations`] trait, so `plp_model::metrics` evaluates them with the
//! same leave-one-out HR@k harness as the skip-gram recommender.

use rand::Rng;

use plp_data::dataset::TokenizedDataset;
use plp_linalg::topk;

use crate::error::ModelError;

/// Anything that can rank all locations given recent check-ins.
pub trait RankLocations {
    /// Returns the top-`k` location tokens for the recent sequence,
    /// best first.
    ///
    /// # Errors
    /// Implementations reject empty inputs or out-of-range tokens.
    fn top_k(&self, recent: &[usize], k: usize) -> Result<Vec<usize>, ModelError>;
}

impl RankLocations for crate::recommender::Recommender {
    fn top_k(&self, recent: &[usize], k: usize) -> Result<Vec<usize>, ModelError> {
        self.recommend(recent, k)
    }
}

/// Dense order-1 transition counts with a global popularity fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovRecommender {
    vocab: usize,
    /// `counts[a][b]`: transitions a → b (possibly noisy, hence `f64`).
    counts: Vec<Vec<f64>>,
    /// Global visit counts (fallback when a row is empty).
    popularity: Vec<f64>,
}

impl MarkovRecommender {
    /// Fits the transition model on within-session consecutive pairs.
    ///
    /// # Errors
    /// The dataset must have a non-empty vocabulary.
    pub fn fit(data: &TokenizedDataset) -> Result<Self, ModelError> {
        if data.vocab_size == 0 {
            return Err(ModelError::BadConfig {
                name: "vocab_size",
                expected: ">= 1",
            });
        }
        let vocab = data.vocab_size;
        let mut counts = vec![vec![0.0; vocab]; vocab];
        let mut popularity = vec![0.0; vocab];
        for u in &data.users {
            for s in &u.sessions {
                for &t in s {
                    if t >= vocab {
                        return Err(ModelError::TokenOutOfRange { token: t, vocab });
                    }
                    popularity[t] += 1.0;
                }
                for w in s.windows(2) {
                    counts[w[0]][w[1]] += 1.0;
                }
            }
        }
        Ok(MarkovRecommender {
            vocab,
            counts,
            popularity,
        })
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// The (possibly noisy) transition count a → b.
    pub fn count(&self, a: usize, b: usize) -> Option<f64> {
        self.counts.get(a).and_then(|r| r.get(b)).copied()
    }

    fn scores_for(&self, recent: &[usize]) -> Result<Vec<f64>, ModelError> {
        let last = *recent.last().ok_or(ModelError::BadConfig {
            name: "recent",
            expected: "non-empty",
        })?;
        if last >= self.vocab {
            return Err(ModelError::TokenOutOfRange {
                token: last,
                vocab: self.vocab,
            });
        }
        let row = &self.counts[last];
        let total: f64 = row.iter().map(|&c| c.max(0.0)).sum();
        if total > 0.0 {
            Ok(row.clone())
        } else {
            // Cold row: fall back to popularity.
            Ok(self.popularity.clone())
        }
    }
}

impl RankLocations for MarkovRecommender {
    fn top_k(&self, recent: &[usize], k: usize) -> Result<Vec<usize>, ModelError> {
        let scores = self.scores_for(recent)?;
        Ok(topk::top_k_indices(&scores, k))
    }
}

/// User-level ε-DP release of the Markov statistics.
///
/// Each user contributes at most `per_user_cap` transition increments and
/// `per_user_cap` popularity increments (excess pairs are dropped,
/// earliest first), bounding the ℓ1 sensitivity of the joint release to
/// `2 · per_user_cap`; every cell then receives Laplace(2·cap/ε) noise.
#[derive(Debug, Clone, PartialEq)]
pub struct DpMarkovRecommender {
    inner: MarkovRecommender,
    epsilon: f64,
    per_user_cap: usize,
}

impl DpMarkovRecommender {
    /// Fits the DP model.
    ///
    /// # Errors
    /// `epsilon` must be positive and finite, `per_user_cap >= 1`, and the
    /// dataset must have a non-empty vocabulary.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &TokenizedDataset,
        epsilon: f64,
        per_user_cap: usize,
    ) -> Result<Self, ModelError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ModelError::BadConfig {
                name: "epsilon",
                expected: "finite and > 0",
            });
        }
        if per_user_cap == 0 {
            return Err(ModelError::BadConfig {
                name: "per_user_cap",
                expected: ">= 1",
            });
        }
        if data.vocab_size == 0 {
            return Err(ModelError::BadConfig {
                name: "vocab_size",
                expected: ">= 1",
            });
        }
        let vocab = data.vocab_size;
        let mut counts = vec![vec![0.0; vocab]; vocab];
        let mut popularity = vec![0.0; vocab];
        for u in &data.users {
            let mut trans_left = per_user_cap;
            let mut pop_left = per_user_cap;
            for s in &u.sessions {
                for &t in s {
                    if t >= vocab {
                        return Err(ModelError::TokenOutOfRange { token: t, vocab });
                    }
                    if pop_left > 0 {
                        popularity[t] += 1.0;
                        pop_left -= 1;
                    }
                }
                for w in s.windows(2) {
                    if trans_left > 0 {
                        counts[w[0]][w[1]] += 1.0;
                        trans_left -= 1;
                    }
                }
            }
        }
        // Joint release: transitions + popularity, sensitivity 2·cap.
        let b = 2.0 * per_user_cap as f64 / epsilon;
        for row in &mut counts {
            for c in row.iter_mut() {
                *c += laplace_sample(rng, b);
            }
        }
        for p in &mut popularity {
            *p += laplace_sample(rng, b);
        }
        Ok(DpMarkovRecommender {
            inner: MarkovRecommender {
                vocab,
                counts,
                popularity,
            },
            epsilon,
            per_user_cap,
        })
    }

    /// The ε of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-user contribution bound.
    pub fn per_user_cap(&self) -> usize {
        self.per_user_cap
    }

    /// Access to the (noisy) underlying statistics.
    pub fn statistics(&self) -> &MarkovRecommender {
        &self.inner
    }
}

impl RankLocations for DpMarkovRecommender {
    fn top_k(&self, recent: &[usize], k: usize) -> Result<Vec<usize>, ModelError> {
        // Noisy rows never sum to exactly zero, so rank the noisy row
        // directly (no fallback; the fallback condition would itself leak).
        let last = *recent.last().ok_or(ModelError::BadConfig {
            name: "recent",
            expected: "non-empty",
        })?;
        if last >= self.inner.vocab {
            return Err(ModelError::TokenOutOfRange {
                token: last,
                vocab: self.inner.vocab,
            });
        }
        Ok(topk::top_k_indices(&self.inner.counts[last], k))
    }
}

/// Draws one Laplace(0, b) variate by inverse-CDF sampling.
fn laplace_sample<R: Rng + ?Sized>(rng: &mut R, b: f64) -> f64 {
    let u: f64 = rand::RngExt::random::<f64>(rng) - 0.5;
    -b * u.signum() * (1.0_f64 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic cycles: 0 -> 1 -> 2 -> 0 and 5 -> 6 -> 5.
    fn data() -> TokenizedDataset {
        let users = (0..10)
            .map(|i| UserSequences {
                user: UserId(i as u32),
                sessions: vec![
                    vec![0, 1, 2, 0, 1, 2, 0],
                    if i % 2 == 0 {
                        vec![5, 6, 5, 6]
                    } else {
                        vec![5, 6]
                    },
                ],
            })
            .collect();
        TokenizedDataset {
            users,
            vocab_size: 8,
        }
    }

    #[test]
    fn markov_learns_deterministic_transitions() {
        let m = MarkovRecommender::fit(&data()).unwrap();
        assert_eq!(m.vocab_size(), 8);
        assert_eq!(m.top_k(&[0], 1).unwrap(), vec![1]);
        assert_eq!(m.top_k(&[1], 1).unwrap(), vec![2]);
        assert_eq!(m.top_k(&[2], 1).unwrap(), vec![0]);
        assert_eq!(
            m.top_k(&[9, 5], 1).unwrap(),
            vec![6],
            "only the last token matters"
        );
        assert!(m.count(0, 1).unwrap() > 0.0);
        assert_eq!(m.count(0, 5).unwrap(), 0.0);
        assert_eq!(m.count(99, 0), None);
    }

    #[test]
    fn markov_cold_row_falls_back_to_popularity() {
        let m = MarkovRecommender::fit(&data()).unwrap();
        // Token 7 never appears: its row is empty -> popularity ranking,
        // where 0/1/2 dominate.
        let top = m.top_k(&[7], 3).unwrap();
        assert!(top.contains(&0) && top.contains(&1));
    }

    #[test]
    fn markov_rejects_bad_inputs() {
        let m = MarkovRecommender::fit(&data()).unwrap();
        assert!(m.top_k(&[], 3).is_err());
        assert!(m.top_k(&[99], 3).is_err());
        let empty = TokenizedDataset {
            users: vec![],
            vocab_size: 0,
        };
        assert!(MarkovRecommender::fit(&empty).is_err());
        let bad = TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions: vec![vec![9]],
            }],
            vocab_size: 4,
        };
        assert!(MarkovRecommender::fit(&bad).is_err());
    }

    #[test]
    fn transitions_do_not_cross_session_boundaries() {
        let ds = TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions: vec![vec![0, 1], vec![2, 3]],
            }],
            vocab_size: 4,
        };
        let m = MarkovRecommender::fit(&ds).unwrap();
        assert_eq!(m.count(1, 2).unwrap(), 0.0);
        assert_eq!(m.count(0, 1).unwrap(), 1.0);
        assert_eq!(m.count(2, 3).unwrap(), 1.0);
    }

    #[test]
    fn dp_markov_with_large_epsilon_matches_plain_ranking() {
        let ds = data();
        let mut rng = StdRng::seed_from_u64(3);
        let dp = DpMarkovRecommender::fit(&mut rng, &ds, 1e6, 100).unwrap();
        assert_eq!(dp.epsilon(), 1e6);
        assert_eq!(dp.per_user_cap(), 100);
        // Noise is ~2e-4: the strong transitions survive.
        assert_eq!(dp.top_k(&[0], 1).unwrap(), vec![1]);
        assert_eq!(dp.top_k(&[1], 1).unwrap(), vec![2]);
    }

    #[test]
    fn dp_markov_with_tiny_epsilon_destroys_structure() {
        let ds = data();
        let mut rng = StdRng::seed_from_u64(5);
        let dp = DpMarkovRecommender::fit(&mut rng, &ds, 1e-3, 10).unwrap();
        // With noise scale 2*10/0.001 = 20000, the true counts (~20) are
        // irrelevant; the argmax is essentially random. Check over many
        // rows that it is not systematically correct.
        let mut correct = 0;
        for _ in 0..20 {
            if dp.top_k(&[0], 1).unwrap() == vec![1] {
                correct += 1;
            }
        }
        // The ranking is deterministic post-noise; it may be right by luck
        // but the *counts* must be noise-dominated.
        let c = dp.statistics().count(0, 1).unwrap().abs();
        assert!(c > 100.0 || correct <= 20, "noise must dominate: count {c}");
    }

    #[test]
    fn per_user_cap_bounds_contribution() {
        // One hyperactive user cannot push a transition above the cap.
        let users = vec![UserSequences {
            user: UserId(0),
            sessions: vec![(0..100).map(|i| i % 2).collect()],
        }];
        let ds = TokenizedDataset {
            users,
            vocab_size: 2,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let dp = DpMarkovRecommender::fit(&mut rng, &ds, 1e9, 3).unwrap();
        // True capped count is at most 3; noise at eps=1e9 is negligible.
        let c01 = dp.statistics().count(0, 1).unwrap();
        let c10 = dp.statistics().count(1, 0).unwrap();
        assert!(c01 + c10 <= 3.0 + 1e-3, "capped total {}", c01 + c10);
    }

    #[test]
    fn dp_markov_validates_parameters() {
        let ds = data();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(DpMarkovRecommender::fit(&mut rng, &ds, 0.0, 5).is_err());
        assert!(DpMarkovRecommender::fit(&mut rng, &ds, f64::NAN, 5).is_err());
        assert!(DpMarkovRecommender::fit(&mut rng, &ds, 1.0, 0).is_err());
        let dp = DpMarkovRecommender::fit(&mut rng, &ds, 1.0, 5).unwrap();
        assert!(dp.top_k(&[], 3).is_err());
        assert!(dp.top_k(&[99], 3).is_err());
    }

    #[test]
    fn rank_trait_unifies_with_embedding_recommender() {
        // Both implementations are callable through the same trait object.
        fn takes_ranker(r: &dyn RankLocations) -> Vec<usize> {
            r.top_k(&[0], 2).unwrap()
        }
        let m = MarkovRecommender::fit(&data()).unwrap();
        assert_eq!(takes_ranker(&m)[0], 1);
    }
}
