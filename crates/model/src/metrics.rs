//! Leave-one-out Hit-Rate@k evaluation (§5.1).
//!
//! "Given a time-ordered user check-in sequence, recommendation models
//! utilize the first (t−1) location visits as an input and predict the t-th
//! location … HR@k is a recall-based metric, measuring whether the test
//! location is in the top-k locations of the recommendation list."
//!
//! One trial per test trajectory (session): input = all but the last visit,
//! target = the last visit. A popularity baseline and the analytic random
//! baseline are provided for calibration.

use serde::{Deserialize, Serialize};

use plp_data::dataset::TokenizedDataset;
use plp_linalg::topk;

use crate::error::ModelError;
use crate::markov::RankLocations;

/// Hit-rate at one cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRate {
    /// The cutoff k.
    pub k: usize,
    /// Trials where the target was in the top-k.
    pub hits: usize,
    /// Total trials.
    pub trials: usize,
}

impl HitRate {
    /// `hits / trials`, `0.0` with no trials.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Extracts leave-one-out trials from the held-out users: for every session
/// with at least two visits, `(input = all but last, target = last)`.
pub fn leave_one_out_trials(test: &TokenizedDataset) -> Vec<(Vec<usize>, usize)> {
    let mut trials = Vec::new();
    for u in &test.users {
        for s in &u.sessions {
            if s.len() >= 2 {
                trials.push((s[..s.len() - 1].to_vec(), s[s.len() - 1]));
            }
        }
    }
    trials
}

/// Evaluates HR@k for every `k` in `ks` over the held-out users.
///
/// Works with any ranker — the skip-gram [`crate::Recommender`], the
/// Markov baselines, or anything else implementing
/// [`RankLocations`](crate::markov::RankLocations).
///
/// # Errors
/// Propagates token-range errors from the recommender.
pub fn evaluate_hit_rate<R: RankLocations + ?Sized>(
    recommender: &R,
    test: &TokenizedDataset,
    ks: &[usize],
) -> Result<Vec<HitRate>, ModelError> {
    let trials = leave_one_out_trials(test);
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let mut hits = vec![0usize; ks.len()];
    for (input, target) in &trials {
        let top = recommender.top_k(input, max_k)?;
        for (i, &k) in ks.iter().enumerate() {
            if top.iter().take(k).any(|&t| t == *target) {
                hits[i] += 1;
            }
        }
    }
    Ok(ks
        .iter()
        .zip(hits)
        .map(|(&k, h)| HitRate {
            k,
            hits: h,
            trials: trials.len(),
        })
        .collect())
}

/// HR@k of a popularity recommender that always returns the globally
/// most-visited locations (counts indexed by token).
pub fn popularity_hit_rate(
    train_counts: &[usize],
    test: &TokenizedDataset,
    ks: &[usize],
) -> Vec<HitRate> {
    let trials = leave_one_out_trials(test);
    let scores: Vec<f64> = train_counts.iter().map(|&c| c as f64).collect();
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let top = topk::top_k_indices(&scores, max_k);
    let mut hits = vec![0usize; ks.len()];
    for (_, target) in &trials {
        for (i, &k) in ks.iter().enumerate() {
            if top.iter().take(k).any(|&t| t == *target) {
                hits[i] += 1;
            }
        }
    }
    ks.iter()
        .zip(hits)
        .map(|(&k, h)| HitRate {
            k,
            hits: h,
            trials: trials.len(),
        })
        .collect()
}

/// The expected HR@k of uniformly random guessing: `k / L`.
pub fn random_baseline(k: usize, vocab_size: usize) -> f64 {
    if vocab_size == 0 {
        0.0
    } else {
        (k.min(vocab_size)) as f64 / vocab_size as f64
    }
}

/// Per-token visit counts of a tokenized dataset (the popularity profile a
/// non-private baseline would use).
pub fn token_counts(data: &TokenizedDataset) -> Vec<usize> {
    let mut counts = vec![0usize; data.vocab_size];
    for u in &data.users {
        for s in &u.sessions {
            for &t in s {
                if t < counts.len() {
                    counts[t] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use plp_linalg::Matrix;

    use crate::recommender::Recommender;

    fn test_set(sessions: Vec<Vec<usize>>) -> TokenizedDataset {
        TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions,
            }],
            vocab_size: 6,
        }
    }

    fn perfect_recommender() -> Recommender {
        // Identity-ish embedding: token i points along axis i (dim 6).
        let m = Matrix::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        Recommender::from_embedding(m)
    }

    #[test]
    fn trials_skip_short_sessions() {
        let t = leave_one_out_trials(&test_set(vec![vec![1], vec![1, 2], vec![3, 4, 5]]));
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (vec![1], 2));
        assert_eq!(t[1], (vec![3, 4], 5));
    }

    #[test]
    fn hit_rate_with_self_predicting_embedding() {
        // Session [2, 2]: the input token 2 is most similar to target 2.
        let ds = test_set(vec![vec![2, 2], vec![3, 3]]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[1, 3]).unwrap();
        assert_eq!(hr[0].k, 1);
        assert_eq!(hr[0].hits, 2);
        assert_eq!(hr[0].trials, 2);
        assert_eq!(hr[0].rate(), 1.0);
        assert_eq!(hr[1].rate(), 1.0);
    }

    #[test]
    fn hit_rate_zero_when_target_is_orthogonal() {
        // Input 0, target 5: orthogonal axes, and 4 other tokens tie at 0;
        // with k = 1 the top slot goes to token 0 itself (score 1).
        let ds = test_set(vec![vec![0, 5]]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[1]).unwrap();
        assert_eq!(hr[0].hits, 0);
    }

    #[test]
    fn empty_test_set_reports_zero_trials() {
        let ds = test_set(vec![]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[5]).unwrap();
        assert_eq!(hr[0].trials, 0);
        assert_eq!(hr[0].rate(), 0.0);
    }

    #[test]
    fn popularity_baseline_hits_popular_targets() {
        let counts = vec![100, 50, 10, 5, 1, 0];
        let ds = test_set(vec![vec![3, 0], vec![3, 5]]);
        let hr = popularity_hit_rate(&counts, &ds, &[1, 6]);
        // k=1: top location is 0; first trial's target is 0 => 1 hit.
        assert_eq!(hr[0].hits, 1);
        // k=6: everything is in the list.
        assert_eq!(hr[1].hits, 2);
    }

    #[test]
    fn random_baseline_formula() {
        assert!((random_baseline(10, 5069) - 10.0 / 5069.0).abs() < 1e-15);
        assert_eq!(random_baseline(10, 5), 1.0);
        assert_eq!(random_baseline(10, 0), 0.0);
    }

    #[test]
    fn token_counts_accumulate() {
        let ds = test_set(vec![vec![1, 1, 2], vec![2]]);
        let c = token_counts(&ds);
        assert_eq!(c, vec![0, 2, 2, 0, 0, 0]);
    }
}
