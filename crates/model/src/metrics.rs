//! Leave-one-out Hit-Rate@k evaluation (§5.1).
//!
//! "Given a time-ordered user check-in sequence, recommendation models
//! utilize the first (t−1) location visits as an input and predict the t-th
//! location … HR@k is a recall-based metric, measuring whether the test
//! location is in the top-k locations of the recommendation list."
//!
//! One trial per test trajectory (session): input = all but the last visit,
//! target = the last visit. A popularity baseline and the analytic random
//! baseline are provided for calibration.

use serde::{Deserialize, Serialize};

use plp_data::dataset::TokenizedDataset;
use plp_linalg::topk;

use crate::error::ModelError;
use crate::markov::RankLocations;

/// Hit-rate at one cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRate {
    /// The cutoff k.
    pub k: usize,
    /// Trials where the target was in the top-k.
    pub hits: usize,
    /// Total trials.
    pub trials: usize,
}

impl HitRate {
    /// `hits / trials`, `0.0` with no trials.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Extracts leave-one-out trials from the held-out users: for every session
/// with at least two visits, `(input = all but last, target = last)`.
///
/// Inputs borrow directly from the dataset's sessions — no per-trial copy.
pub fn leave_one_out_trials(test: &TokenizedDataset) -> Vec<(&[usize], usize)> {
    let mut trials = Vec::new();
    for u in &test.users {
        for s in &u.sessions {
            if s.len() >= 2 {
                trials.push((&s[..s.len() - 1], s[s.len() - 1]));
            }
        }
    }
    trials
}

/// Counts hits per cutoff over the strided trial subset
/// `{i : i ≡ offset (mod stride)}` — the shared work kernel of the
/// sequential and threaded evaluators. The strided partition matches the
/// training loop's worker assignment, and since per-`k` hit counts are
/// integers, any recombination of the per-worker partials is exact.
fn hit_counts<R: RankLocations + ?Sized>(
    recommender: &R,
    trials: &[(&[usize], usize)],
    ks: &[usize],
    max_k: usize,
    offset: usize,
    stride: usize,
) -> Result<Vec<usize>, ModelError> {
    let mut hits = vec![0usize; ks.len()];
    for (input, target) in trials.iter().skip(offset).step_by(stride.max(1)) {
        let top = recommender.top_k(input, max_k)?;
        for (i, &k) in ks.iter().enumerate() {
            if top.iter().take(k).any(|&t| t == *target) {
                hits[i] += 1;
            }
        }
    }
    Ok(hits)
}

/// Evaluates HR@k for every `k` in `ks` over the held-out users.
///
/// Works with any ranker — the skip-gram [`crate::Recommender`], the
/// Markov baselines, or anything else implementing
/// [`RankLocations`](crate::markov::RankLocations).
///
/// # Errors
/// Propagates token-range errors from the recommender.
pub fn evaluate_hit_rate<R: RankLocations + ?Sized>(
    recommender: &R,
    test: &TokenizedDataset,
    ks: &[usize],
) -> Result<Vec<HitRate>, ModelError> {
    let trials = leave_one_out_trials(test);
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let hits = hit_counts(recommender, &trials, ks, max_k, 0, 1)?;
    Ok(assemble(ks, hits, trials.len()))
}

/// [`evaluate_hit_rate`] parallelised over trials with `threads` workers.
///
/// Worker `w` evaluates trials `{i : i ≡ w (mod threads)}` and the partial
/// per-`k` hit counts are reduced in worker order. Hit counts are integer
/// sums, so the result is *identical* to the sequential evaluator for every
/// thread count — the companion regression test pins threads=1 against
/// threads=4. `threads ≤ 1` (or fewer trials than workers would need)
/// falls back to the sequential path without spawning.
///
/// # Errors
/// Propagates token-range errors from the recommender; the first failing
/// worker (in worker order) wins.
pub fn evaluate_hit_rate_threaded<R: RankLocations + Sync + ?Sized>(
    recommender: &R,
    test: &TokenizedDataset,
    ks: &[usize],
    threads: usize,
) -> Result<Vec<HitRate>, ModelError> {
    let trials = leave_one_out_trials(test);
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let workers = threads.max(1).min(trials.len().max(1));
    if workers <= 1 {
        let hits = hit_counts(recommender, &trials, ks, max_k, 0, 1)?;
        return Ok(assemble(ks, hits, trials.len()));
    }
    let partials: Vec<Result<Vec<usize>, ModelError>> = crossbeam::thread::scope(|scope| {
        let trials = &trials;
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move |_| hit_counts(recommender, trials, ks, max_k, w, workers)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .collect()
    })
    .expect("eval thread scope");
    // Deterministic ordered reduction: worker 0 first, then 1, … (exact for
    // integer counts, and the order every future float reduction must keep).
    let mut hits = vec![0usize; ks.len()];
    for partial in partials {
        for (total, h) in hits.iter_mut().zip(partial?) {
            *total += h;
        }
    }
    Ok(assemble(ks, hits, trials.len()))
}

fn assemble(ks: &[usize], hits: Vec<usize>, trials: usize) -> Vec<HitRate> {
    ks.iter()
        .zip(hits)
        .map(|(&k, h)| HitRate { k, hits: h, trials })
        .collect()
}

/// HR@k of a popularity recommender that always returns the globally
/// most-visited locations (counts indexed by token).
pub fn popularity_hit_rate(
    train_counts: &[usize],
    test: &TokenizedDataset,
    ks: &[usize],
) -> Vec<HitRate> {
    let trials = leave_one_out_trials(test);
    let scores: Vec<f64> = train_counts.iter().map(|&c| c as f64).collect();
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let top = topk::top_k_indices(&scores, max_k);
    let mut hits = vec![0usize; ks.len()];
    for (_, target) in &trials {
        for (i, &k) in ks.iter().enumerate() {
            if top.iter().take(k).any(|&t| t == *target) {
                hits[i] += 1;
            }
        }
    }
    ks.iter()
        .zip(hits)
        .map(|(&k, h)| HitRate {
            k,
            hits: h,
            trials: trials.len(),
        })
        .collect()
}

/// The expected HR@k of uniformly random guessing: `k / L`.
pub fn random_baseline(k: usize, vocab_size: usize) -> f64 {
    if vocab_size == 0 {
        0.0
    } else {
        (k.min(vocab_size)) as f64 / vocab_size as f64
    }
}

/// Per-token visit counts of a tokenized dataset (the popularity profile a
/// non-private baseline would use).
pub fn token_counts(data: &TokenizedDataset) -> Vec<usize> {
    let mut counts = vec![0usize; data.vocab_size];
    for u in &data.users {
        for s in &u.sessions {
            for &t in s {
                if t < counts.len() {
                    counts[t] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_data::checkin::UserId;
    use plp_data::dataset::UserSequences;
    use plp_linalg::Matrix;

    use crate::recommender::Recommender;

    fn test_set(sessions: Vec<Vec<usize>>) -> TokenizedDataset {
        TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions,
            }],
            vocab_size: 6,
        }
    }

    fn perfect_recommender() -> Recommender {
        // Identity-ish embedding: token i points along axis i (dim 6).
        let m = Matrix::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        Recommender::from_embedding(m).unwrap()
    }

    #[test]
    fn trials_skip_short_sessions() {
        let ds = test_set(vec![vec![1], vec![1, 2], vec![3, 4, 5]]);
        let t = leave_one_out_trials(&ds);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (&[1][..], 2));
        assert_eq!(t[1], (&[3, 4][..], 5));
    }

    #[test]
    fn hit_rate_with_self_predicting_embedding() {
        // Session [2, 2]: the input token 2 is most similar to target 2.
        let ds = test_set(vec![vec![2, 2], vec![3, 3]]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[1, 3]).unwrap();
        assert_eq!(hr[0].k, 1);
        assert_eq!(hr[0].hits, 2);
        assert_eq!(hr[0].trials, 2);
        assert_eq!(hr[0].rate(), 1.0);
        assert_eq!(hr[1].rate(), 1.0);
    }

    #[test]
    fn hit_rate_zero_when_target_is_orthogonal() {
        // Input 0, target 5: orthogonal axes, and 4 other tokens tie at 0;
        // with k = 1 the top slot goes to token 0 itself (score 1).
        let ds = test_set(vec![vec![0, 5]]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[1]).unwrap();
        assert_eq!(hr[0].hits, 0);
    }

    #[test]
    fn empty_test_set_reports_zero_trials() {
        let ds = test_set(vec![]);
        let r = perfect_recommender();
        let hr = evaluate_hit_rate(&r, &ds, &[5]).unwrap();
        assert_eq!(hr[0].trials, 0);
        assert_eq!(hr[0].rate(), 0.0);
    }

    #[test]
    fn popularity_baseline_hits_popular_targets() {
        let counts = vec![100, 50, 10, 5, 1, 0];
        let ds = test_set(vec![vec![3, 0], vec![3, 5]]);
        let hr = popularity_hit_rate(&counts, &ds, &[1, 6]);
        // k=1: top location is 0; first trial's target is 0 => 1 hit.
        assert_eq!(hr[0].hits, 1);
        // k=6: everything is in the list.
        assert_eq!(hr[1].hits, 2);
    }

    #[test]
    fn random_baseline_formula() {
        assert!((random_baseline(10, 5069) - 10.0 / 5069.0).abs() < 1e-15);
        assert_eq!(random_baseline(10, 5), 1.0);
        assert_eq!(random_baseline(10, 0), 0.0);
    }

    #[test]
    fn token_counts_accumulate() {
        let ds = test_set(vec![vec![1, 1, 2], vec![2]]);
        let c = token_counts(&ds);
        assert_eq!(c, vec![0, 2, 2, 0, 0, 0]);
    }

    #[test]
    fn threaded_eval_is_identical_across_thread_counts() {
        // Regression for the deterministic ordered reduction: threads=1 and
        // threads=4 must report identical metrics, and both must match the
        // sequential evaluator.
        let sessions: Vec<Vec<usize>> = (0..23)
            .map(|i| vec![i % 6, (i + 1) % 6, (i * 3 + 2) % 6])
            .collect();
        let ds = test_set(sessions);
        let r = perfect_recommender();
        let ks = [1usize, 3, 5];
        let sequential = evaluate_hit_rate(&r, &ds, &ks).unwrap();
        let one = evaluate_hit_rate_threaded(&r, &ds, &ks, 1).unwrap();
        let four = evaluate_hit_rate_threaded(&r, &ds, &ks, 4).unwrap();
        let many = evaluate_hit_rate_threaded(&r, &ds, &ks, 64).unwrap();
        assert_eq!(one, sequential);
        assert_eq!(four, sequential);
        assert_eq!(many, sequential, "more workers than trials still exact");
    }

    #[test]
    fn threaded_eval_propagates_worker_errors() {
        // Token 9 is out of range for the dim-6 recommender: every worker
        // partition contains failing trials and the error must surface.
        let ds = TokenizedDataset {
            users: vec![UserSequences {
                user: UserId(0),
                sessions: vec![vec![9, 1], vec![9, 2], vec![9, 3]],
            }],
            vocab_size: 10,
        };
        let r = perfect_recommender();
        assert!(evaluate_hit_rate_threaded(&r, &ds, &[1], 2).is_err());
    }
}
