//! Server-side optimisers applied to the (noisy) aggregated model delta.
//!
//! Algorithm 1, line 10 updates the model with the noisy average of bucket
//! deltas: `θ_{t+1} = θ_t + ĝ_t`. The paper trains with Adam "implemented
//! in a differentially private manner by tracking an exponential moving
//! average of the noisy gradient and the squared noisy gradient"
//! (Gylberth et al. 2017, §5.1) — since ĝ_t is already differentially
//! private, any post-processing (including Adam's moment tracking) is
//! privacy-free.

use serde::{Deserialize, Serialize};

use plp_linalg::ops;

use crate::error::ModelError;
use crate::params::ModelParams;

/// One chunk of an Adam update: `(params, m, v, update)` slices of equal
/// length.
type AdamJob<'a> = (&'a mut [f64], &'a mut [f64], &'a mut [f64], &'a [f64]);

/// The element-wise Adam recurrence over one slab chunk. Shared by the
/// sequential and threaded steps so the two paths cannot drift: the update
/// is per-element, so any chunking of the slabs produces bit-identical
/// parameters.
#[allow(clippy::too_many_arguments)]
fn adam_apply(
    p: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    u: &[f64],
    b1: f64,
    b2: f64,
    bc1: f64,
    bc2: f64,
    lr: f64,
    eps: f64,
) {
    for i in 0..p.len() {
        m[i] = b1 * m[i] + (1.0 - b1) * u[i];
        v[i] = b2 * v[i] + (1.0 - b2) * u[i] * u[i];
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        p[i] += lr * mhat / (vhat.sqrt() + eps);
    }
}

/// Splits `(y, x)` into up to `parts` equal-length chunk pairs.
fn push_chunks2<'a>(
    y: &'a mut [f64],
    x: &'a [f64],
    parts: usize,
    out: &mut Vec<(&'a mut [f64], &'a [f64])>,
) {
    let chunk = y.len().div_ceil(parts.max(1)).max(1);
    for (yc, xc) in y.chunks_mut(chunk).zip(x.chunks(chunk)) {
        out.push((yc, xc));
    }
}

/// Splits an Adam slab quadruple into up to `parts` aligned chunk jobs.
fn push_chunks4<'a>(
    p: &'a mut [f64],
    m: &'a mut [f64],
    v: &'a mut [f64],
    u: &'a [f64],
    parts: usize,
    out: &mut Vec<AdamJob<'a>>,
) {
    let chunk = p.len().div_ceil(parts.max(1)).max(1);
    let iter = p
        .chunks_mut(chunk)
        .zip(m.chunks_mut(chunk))
        .zip(v.chunks_mut(chunk))
        .zip(u.chunks(chunk));
    for (((pc, mc), vc), uc) in iter {
        out.push((pc, mc, vc, uc));
    }
}

/// Runs `f` over every job, fanning the jobs round-robin across `threads`
/// crossbeam-scoped workers (sequentially when `threads ≤ 1` or there is at
/// most one job). The jobs are element-wise and disjoint, so execution
/// order cannot affect the result.
fn run_chunk_jobs<J: Send, F: Fn(J) + Sync>(threads: usize, jobs: Vec<J>, f: F) {
    if threads <= 1 || jobs.len() <= 1 {
        for j in jobs {
            f(j);
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let mut buckets: Vec<Vec<J>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, j) in jobs.into_iter().enumerate() {
        buckets[i % workers].push(j);
    }
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move |_| {
                    for j in bucket {
                        f(j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("server update worker panicked");
        }
    })
    .expect("server update thread scope");
}

/// Plain averaging server update: `θ ← θ + lr · ĝ` (lr = 1 reproduces
/// Algorithm 1 literally).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSgd {
    /// Server learning rate applied to the aggregated delta.
    pub learning_rate: f64,
}

impl ServerSgd {
    /// Creates a validated server-SGD updater.
    ///
    /// # Errors
    /// `learning_rate` must be finite and positive.
    pub fn new(learning_rate: f64) -> Result<Self, ModelError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(ModelError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        Ok(ServerSgd { learning_rate })
    }

    /// Applies `params += lr · update`.
    ///
    /// # Errors
    /// Shapes must match and the result must stay finite.
    pub fn step(&self, params: &mut ModelParams, update: &ModelParams) -> Result<(), ModelError> {
        params.axpy(self.learning_rate, update)?;
        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after server sgd",
            });
        }
        Ok(())
    }

    /// [`ServerSgd::step`] with the element-wise axpy fanned over `threads`
    /// workers. The update is per-element, so the result is bit-identical
    /// to the sequential step for every thread count; `threads ≤ 1` falls
    /// back to the sequential path without spawning.
    ///
    /// # Errors
    /// Shapes must match and the result must stay finite.
    pub fn step_threaded(
        &self,
        params: &mut ModelParams,
        update: &ModelParams,
        threads: usize,
    ) -> Result<(), ModelError> {
        if threads <= 1 {
            return self.step(params, update);
        }
        if !params.same_shape(update) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerSgd step",
            });
        }
        let lr = self.learning_rate;
        let mut jobs: Vec<(&mut [f64], &[f64])> = Vec::new();
        push_chunks2(
            params.embedding.as_mut_slice(),
            update.embedding.as_slice(),
            threads,
            &mut jobs,
        );
        push_chunks2(
            params.context.as_mut_slice(),
            update.context.as_slice(),
            threads,
            &mut jobs,
        );
        push_chunks2(&mut params.bias, &update.bias, threads, &mut jobs);
        run_chunk_jobs(threads, jobs, |(y, x)| ops::axpy_unchecked(lr, x, y));
        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after server sgd",
            });
        }
        Ok(())
    }
}

/// DP-Adam: Adam moments tracked over the noisy aggregated update.
///
/// The update direction ĝ plays the role of the (negated) gradient, so the
/// step is `θ += lr · m̂ / (√v̂ + ε)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerAdam {
    /// Step size α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub eps: f64,
    t: u64,
    m: ModelParams,
    v: ModelParams,
}

impl ServerAdam {
    /// Creates an Adam state matching the shape of `template`.
    ///
    /// # Errors
    /// Standard Adam domain checks (`lr > 0`, betas in `[0, 1)`, `eps > 0`).
    pub fn new(template: &ModelParams, learning_rate: f64) -> Result<Self, ModelError> {
        Self::with_betas(template, learning_rate, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised constructor.
    ///
    /// # Errors
    /// Standard Adam domain checks.
    pub fn with_betas(
        template: &ModelParams,
        learning_rate: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
    ) -> Result<Self, ModelError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(ModelError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        if !(0.0..1.0).contains(&beta1) || !(0.0..1.0).contains(&beta2) {
            return Err(ModelError::BadConfig {
                name: "beta1/beta2",
                expected: "in [0, 1)",
            });
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(ModelError::BadConfig {
                name: "eps",
                expected: "finite and > 0",
            });
        }
        Ok(ServerAdam {
            learning_rate,
            beta1,
            beta2,
            eps,
            t: 0,
            m: ModelParams::zeros(template.vocab_size(), template.dim()),
            v: ModelParams::zeros(template.vocab_size(), template.dim()),
        })
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The internal optimiser state `(t, m, v)`, for checkpointing.
    pub fn state(&self) -> (u64, &ModelParams, &ModelParams) {
        (self.t, &self.m, &self.v)
    }

    /// Reconstructs an Adam state restored from a checkpoint.
    ///
    /// # Errors
    /// Same domain checks as [`ServerAdam::with_betas`], plus `m` and `v`
    /// must share one shape.
    pub fn from_state(
        learning_rate: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
        t: u64,
        m: ModelParams,
        v: ModelParams,
    ) -> Result<Self, ModelError> {
        let mut adam = Self::with_betas(&m, learning_rate, beta1, beta2, eps)?;
        if !m.same_shape(&v) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerAdam m/v state",
            });
        }
        if !(m.all_finite() && v.all_finite()) {
            return Err(ModelError::NonFinite {
                at: "restored adam moments",
            });
        }
        adam.t = t;
        adam.m = m;
        adam.v = v;
        Ok(adam)
    }

    /// Applies one Adam step with `update` as the (noisy) direction.
    ///
    /// # Errors
    /// Shapes must match; the result must stay finite.
    pub fn step(
        &mut self,
        params: &mut ModelParams,
        update: &ModelParams,
    ) -> Result<(), ModelError> {
        if !params.same_shape(update) || !params.same_shape(&self.m) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerAdam step",
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.learning_rate;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);

        adam_apply(
            params.embedding.as_mut_slice(),
            self.m.embedding.as_mut_slice(),
            self.v.embedding.as_mut_slice(),
            update.embedding.as_slice(),
            b1,
            b2,
            bc1,
            bc2,
            lr,
            eps,
        );
        adam_apply(
            params.context.as_mut_slice(),
            self.m.context.as_mut_slice(),
            self.v.context.as_mut_slice(),
            update.context.as_slice(),
            b1,
            b2,
            bc1,
            bc2,
            lr,
            eps,
        );
        adam_apply(
            &mut params.bias,
            &mut self.m.bias,
            &mut self.v.bias,
            &update.bias,
            b1,
            b2,
            bc1,
            bc2,
            lr,
            eps,
        );

        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after adam step",
            });
        }
        Ok(())
    }

    /// [`ServerAdam::step`] with the element-wise recurrence fanned over
    /// `threads` workers via the shared [`adam_apply`] kernel, so the
    /// sequential and threaded paths run the exact same per-element float
    /// operations and the result is bit-identical for every thread count.
    /// `threads ≤ 1` falls back to the sequential step without spawning.
    ///
    /// # Errors
    /// Shapes must match; the result must stay finite.
    pub fn step_threaded(
        &mut self,
        params: &mut ModelParams,
        update: &ModelParams,
        threads: usize,
    ) -> Result<(), ModelError> {
        if threads <= 1 {
            return self.step(params, update);
        }
        if !params.same_shape(update) || !params.same_shape(&self.m) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerAdam step",
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.learning_rate;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);

        let mut jobs: Vec<AdamJob> = Vec::new();
        push_chunks4(
            params.embedding.as_mut_slice(),
            self.m.embedding.as_mut_slice(),
            self.v.embedding.as_mut_slice(),
            update.embedding.as_slice(),
            threads,
            &mut jobs,
        );
        push_chunks4(
            params.context.as_mut_slice(),
            self.m.context.as_mut_slice(),
            self.v.context.as_mut_slice(),
            update.context.as_slice(),
            threads,
            &mut jobs,
        );
        push_chunks4(
            &mut params.bias,
            &mut self.m.bias,
            &mut self.v.bias,
            &update.bias,
            threads,
            &mut jobs,
        );
        run_chunk_jobs(threads, jobs, |(p, m, v, u)| {
            adam_apply(p, m, v, u, b1, b2, bc1, bc2, lr, eps)
        });

        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after adam step",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(vocab: usize, dim: usize, value: f64) -> ModelParams {
        let mut d = ModelParams::zeros(vocab, dim);
        d.embedding.fill(value);
        d.bias.fill(value);
        d
    }

    #[test]
    fn sgd_applies_scaled_delta() {
        let mut p = ModelParams::zeros(2, 2);
        let u = delta(2, 2, 1.0);
        ServerSgd::new(0.5).unwrap().step(&mut p, &u).unwrap();
        assert!(p.embedding.as_slice().iter().all(|&x| x == 0.5));
        assert!(p.bias.iter().all(|&x| x == 0.5));
    }

    #[test]
    fn sgd_rejects_bad_lr_and_shapes() {
        assert!(ServerSgd::new(0.0).is_err());
        assert!(ServerSgd::new(f64::NAN).is_err());
        let mut p = ModelParams::zeros(2, 2);
        let wrong = ModelParams::zeros(3, 2);
        assert!(ServerSgd::new(1.0).unwrap().step(&mut p, &wrong).is_err());
    }

    #[test]
    fn sgd_detects_nan_poisoning() {
        let mut p = ModelParams::zeros(1, 1);
        let mut u = ModelParams::zeros(1, 1);
        u.bias[0] = f64::NAN;
        assert!(matches!(
            ServerSgd::new(1.0).unwrap().step(&mut p, &u),
            Err(ModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn adam_first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step is ≈ lr · sign(u).
        let mut p = ModelParams::zeros(2, 2);
        let mut adam = ServerAdam::new(&p, 0.01).unwrap();
        let u = delta(2, 2, 0.5);
        adam.step(&mut p, &u).unwrap();
        assert_eq!(adam.steps(), 1);
        let x = p.embedding.get(0, 0);
        assert!((x - 0.01).abs() < 1e-6, "first step {x}");
    }

    #[test]
    fn adam_accelerates_in_consistent_direction() {
        let mut p = ModelParams::zeros(1, 1);
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let u = delta(1, 1, 1.0);
        for _ in 0..50 {
            adam.step(&mut p, &u).unwrap();
        }
        // 50 steps of ~0.1 each in a constant direction.
        let x = p.embedding.get(0, 0);
        assert!(x > 3.0, "travelled {x}");
        assert!(p.all_finite());
    }

    #[test]
    fn adam_zero_update_keeps_params() {
        let mut p = delta(2, 2, 1.0);
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let zero = ModelParams::zeros(2, 2);
        adam.step(&mut p, &zero).unwrap();
        // m and v stay zero, so the step is exactly zero.
        assert!(p.embedding.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn adam_state_round_trip_continues_identically() {
        let mut p = ModelParams::zeros(2, 3);
        let mut adam = ServerAdam::new(&p, 0.05).unwrap();
        let u = delta(2, 3, 0.25);
        for _ in 0..5 {
            adam.step(&mut p, &u).unwrap();
        }
        let (t, m, v) = adam.state();
        let mut restored = ServerAdam::from_state(
            adam.learning_rate,
            adam.beta1,
            adam.beta2,
            adam.eps,
            t,
            m.clone(),
            v.clone(),
        )
        .unwrap();
        let mut p2 = p.clone();
        adam.step(&mut p, &u).unwrap();
        restored.step(&mut p2, &u).unwrap();
        assert_eq!(p, p2, "restored optimizer must continue bit-identically");
        assert_eq!(adam.steps(), restored.steps());
    }

    fn ragged_delta(vocab: usize, dim: usize) -> ModelParams {
        // Non-uniform values so a chunking bug cannot hide behind symmetry.
        let mut d = ModelParams::zeros(vocab, dim);
        for (i, x) in d.embedding.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f64 * 0.37).sin();
        }
        for (i, x) in d.context.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f64 * 0.11).cos();
        }
        for (i, x) in d.bias.iter_mut().enumerate() {
            *x = i as f64 * 0.01 - 0.3;
        }
        d
    }

    #[test]
    fn sgd_step_threaded_is_bit_identical_across_thread_counts() {
        let sgd = ServerSgd::new(0.7).unwrap();
        let u = ragged_delta(13, 5);
        let mut want = ragged_delta(13, 5);
        sgd.step(&mut want, &u).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let mut got = ragged_delta(13, 5);
            sgd.step_threaded(&mut got, &u, threads).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn adam_step_threaded_is_bit_identical_across_thread_counts() {
        // Multi-step: any drift in (t, m, v) state would compound.
        let u = ragged_delta(13, 5);
        let mut ref_params = ModelParams::zeros(13, 5);
        let mut ref_adam = ServerAdam::new(&ref_params, 0.05).unwrap();
        for _ in 0..6 {
            ref_adam.step(&mut ref_params, &u).unwrap();
        }
        for threads in [1usize, 2, 4, 8] {
            let mut p = ModelParams::zeros(13, 5);
            let mut adam = ServerAdam::new(&p, 0.05).unwrap();
            for _ in 0..6 {
                adam.step_threaded(&mut p, &u, threads).unwrap();
            }
            assert_eq!(p, ref_params, "params, threads={threads}");
            assert_eq!(adam.steps(), ref_adam.steps());
            let (_, m, v) = adam.state();
            let (_, rm, rv) = ref_adam.state();
            assert_eq!(m, rm, "m state, threads={threads}");
            assert_eq!(v, rv, "v state, threads={threads}");
        }
    }

    #[test]
    fn step_threaded_validates_like_sequential() {
        let mut p = ModelParams::zeros(2, 2);
        let wrong = ModelParams::zeros(3, 2);
        let sgd = ServerSgd::new(1.0).unwrap();
        assert!(sgd.step_threaded(&mut p, &wrong, 4).is_err());
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        assert!(adam.step_threaded(&mut p, &wrong, 4).is_err());
        assert_eq!(adam.steps(), 0, "failed step must not be counted");
        let mut u = ModelParams::zeros(2, 2);
        u.bias[0] = f64::NAN;
        assert!(matches!(
            sgd.step_threaded(&mut p, &u, 4),
            Err(ModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn adam_from_state_rejects_bad_state() {
        let m = ModelParams::zeros(2, 2);
        let v = ModelParams::zeros(3, 2);
        assert!(ServerAdam::from_state(0.1, 0.9, 0.999, 1e-8, 1, m.clone(), v).is_err());
        let mut bad = ModelParams::zeros(2, 2);
        bad.bias[0] = f64::INFINITY;
        assert!(ServerAdam::from_state(0.1, 0.9, 0.999, 1e-8, 1, m, bad).is_err());
    }

    #[test]
    fn adam_validates_parameters() {
        let p = ModelParams::zeros(1, 1);
        assert!(ServerAdam::with_betas(&p, 0.0, 0.9, 0.999, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 1.0, 0.999, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 0.9, -0.1, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 0.9, 0.999, 0.0).is_err());
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let mut p2 = ModelParams::zeros(2, 1);
        let u2 = ModelParams::zeros(2, 1);
        assert!(
            adam.step(&mut p2, &u2).is_err(),
            "shape mismatch with state"
        );
    }
}
