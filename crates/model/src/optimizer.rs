//! Server-side optimisers applied to the (noisy) aggregated model delta.
//!
//! Algorithm 1, line 10 updates the model with the noisy average of bucket
//! deltas: `θ_{t+1} = θ_t + ĝ_t`. The paper trains with Adam "implemented
//! in a differentially private manner by tracking an exponential moving
//! average of the noisy gradient and the squared noisy gradient"
//! (Gylberth et al. 2017, §5.1) — since ĝ_t is already differentially
//! private, any post-processing (including Adam's moment tracking) is
//! privacy-free.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::params::ModelParams;

/// Plain averaging server update: `θ ← θ + lr · ĝ` (lr = 1 reproduces
/// Algorithm 1 literally).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSgd {
    /// Server learning rate applied to the aggregated delta.
    pub learning_rate: f64,
}

impl ServerSgd {
    /// Creates a validated server-SGD updater.
    ///
    /// # Errors
    /// `learning_rate` must be finite and positive.
    pub fn new(learning_rate: f64) -> Result<Self, ModelError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(ModelError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        Ok(ServerSgd { learning_rate })
    }

    /// Applies `params += lr · update`.
    ///
    /// # Errors
    /// Shapes must match and the result must stay finite.
    pub fn step(&self, params: &mut ModelParams, update: &ModelParams) -> Result<(), ModelError> {
        params.axpy(self.learning_rate, update)?;
        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after server sgd",
            });
        }
        Ok(())
    }
}

/// DP-Adam: Adam moments tracked over the noisy aggregated update.
///
/// The update direction ĝ plays the role of the (negated) gradient, so the
/// step is `θ += lr · m̂ / (√v̂ + ε)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerAdam {
    /// Step size α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub eps: f64,
    t: u64,
    m: ModelParams,
    v: ModelParams,
}

impl ServerAdam {
    /// Creates an Adam state matching the shape of `template`.
    ///
    /// # Errors
    /// Standard Adam domain checks (`lr > 0`, betas in `[0, 1)`, `eps > 0`).
    pub fn new(template: &ModelParams, learning_rate: f64) -> Result<Self, ModelError> {
        Self::with_betas(template, learning_rate, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised constructor.
    ///
    /// # Errors
    /// Standard Adam domain checks.
    pub fn with_betas(
        template: &ModelParams,
        learning_rate: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
    ) -> Result<Self, ModelError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(ModelError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        if !(0.0..1.0).contains(&beta1) || !(0.0..1.0).contains(&beta2) {
            return Err(ModelError::BadConfig {
                name: "beta1/beta2",
                expected: "in [0, 1)",
            });
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(ModelError::BadConfig {
                name: "eps",
                expected: "finite and > 0",
            });
        }
        Ok(ServerAdam {
            learning_rate,
            beta1,
            beta2,
            eps,
            t: 0,
            m: ModelParams::zeros(template.vocab_size(), template.dim()),
            v: ModelParams::zeros(template.vocab_size(), template.dim()),
        })
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The internal optimiser state `(t, m, v)`, for checkpointing.
    pub fn state(&self) -> (u64, &ModelParams, &ModelParams) {
        (self.t, &self.m, &self.v)
    }

    /// Reconstructs an Adam state restored from a checkpoint.
    ///
    /// # Errors
    /// Same domain checks as [`ServerAdam::with_betas`], plus `m` and `v`
    /// must share one shape.
    pub fn from_state(
        learning_rate: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
        t: u64,
        m: ModelParams,
        v: ModelParams,
    ) -> Result<Self, ModelError> {
        let mut adam = Self::with_betas(&m, learning_rate, beta1, beta2, eps)?;
        if !m.same_shape(&v) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerAdam m/v state",
            });
        }
        if !(m.all_finite() && v.all_finite()) {
            return Err(ModelError::NonFinite {
                at: "restored adam moments",
            });
        }
        adam.t = t;
        adam.m = m;
        adam.v = v;
        Ok(adam)
    }

    /// Applies one Adam step with `update` as the (noisy) direction.
    ///
    /// # Errors
    /// Shapes must match; the result must stay finite.
    pub fn step(
        &mut self,
        params: &mut ModelParams,
        update: &ModelParams,
    ) -> Result<(), ModelError> {
        if !params.same_shape(update) || !params.same_shape(&self.m) {
            return Err(ModelError::ShapeMismatch {
                what: "ServerAdam step",
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.learning_rate;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);

        let apply = |p: &mut [f64], m: &mut [f64], v: &mut [f64], u: &[f64]| {
            for i in 0..p.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * u[i];
                v[i] = b2 * v[i] + (1.0 - b2) * u[i] * u[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] += lr * mhat / (vhat.sqrt() + eps);
            }
        };
        apply(
            params.embedding.as_mut_slice(),
            self.m.embedding.as_mut_slice(),
            self.v.embedding.as_mut_slice(),
            update.embedding.as_slice(),
        );
        apply(
            params.context.as_mut_slice(),
            self.m.context.as_mut_slice(),
            self.v.context.as_mut_slice(),
            update.context.as_slice(),
        );
        apply(
            &mut params.bias,
            &mut self.m.bias,
            &mut self.v.bias,
            &update.bias,
        );

        if !params.all_finite() {
            return Err(ModelError::NonFinite {
                at: "parameters after adam step",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(vocab: usize, dim: usize, value: f64) -> ModelParams {
        let mut d = ModelParams::zeros(vocab, dim);
        d.embedding.fill(value);
        d.bias.fill(value);
        d
    }

    #[test]
    fn sgd_applies_scaled_delta() {
        let mut p = ModelParams::zeros(2, 2);
        let u = delta(2, 2, 1.0);
        ServerSgd::new(0.5).unwrap().step(&mut p, &u).unwrap();
        assert!(p.embedding.as_slice().iter().all(|&x| x == 0.5));
        assert!(p.bias.iter().all(|&x| x == 0.5));
    }

    #[test]
    fn sgd_rejects_bad_lr_and_shapes() {
        assert!(ServerSgd::new(0.0).is_err());
        assert!(ServerSgd::new(f64::NAN).is_err());
        let mut p = ModelParams::zeros(2, 2);
        let wrong = ModelParams::zeros(3, 2);
        assert!(ServerSgd::new(1.0).unwrap().step(&mut p, &wrong).is_err());
    }

    #[test]
    fn sgd_detects_nan_poisoning() {
        let mut p = ModelParams::zeros(1, 1);
        let mut u = ModelParams::zeros(1, 1);
        u.bias[0] = f64::NAN;
        assert!(matches!(
            ServerSgd::new(1.0).unwrap().step(&mut p, &u),
            Err(ModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn adam_first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step is ≈ lr · sign(u).
        let mut p = ModelParams::zeros(2, 2);
        let mut adam = ServerAdam::new(&p, 0.01).unwrap();
        let u = delta(2, 2, 0.5);
        adam.step(&mut p, &u).unwrap();
        assert_eq!(adam.steps(), 1);
        let x = p.embedding.get(0, 0);
        assert!((x - 0.01).abs() < 1e-6, "first step {x}");
    }

    #[test]
    fn adam_accelerates_in_consistent_direction() {
        let mut p = ModelParams::zeros(1, 1);
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let u = delta(1, 1, 1.0);
        for _ in 0..50 {
            adam.step(&mut p, &u).unwrap();
        }
        // 50 steps of ~0.1 each in a constant direction.
        let x = p.embedding.get(0, 0);
        assert!(x > 3.0, "travelled {x}");
        assert!(p.all_finite());
    }

    #[test]
    fn adam_zero_update_keeps_params() {
        let mut p = delta(2, 2, 1.0);
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let zero = ModelParams::zeros(2, 2);
        adam.step(&mut p, &zero).unwrap();
        // m and v stay zero, so the step is exactly zero.
        assert!(p.embedding.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn adam_state_round_trip_continues_identically() {
        let mut p = ModelParams::zeros(2, 3);
        let mut adam = ServerAdam::new(&p, 0.05).unwrap();
        let u = delta(2, 3, 0.25);
        for _ in 0..5 {
            adam.step(&mut p, &u).unwrap();
        }
        let (t, m, v) = adam.state();
        let mut restored = ServerAdam::from_state(
            adam.learning_rate,
            adam.beta1,
            adam.beta2,
            adam.eps,
            t,
            m.clone(),
            v.clone(),
        )
        .unwrap();
        let mut p2 = p.clone();
        adam.step(&mut p, &u).unwrap();
        restored.step(&mut p2, &u).unwrap();
        assert_eq!(p, p2, "restored optimizer must continue bit-identically");
        assert_eq!(adam.steps(), restored.steps());
    }

    #[test]
    fn adam_from_state_rejects_bad_state() {
        let m = ModelParams::zeros(2, 2);
        let v = ModelParams::zeros(3, 2);
        assert!(ServerAdam::from_state(0.1, 0.9, 0.999, 1e-8, 1, m.clone(), v).is_err());
        let mut bad = ModelParams::zeros(2, 2);
        bad.bias[0] = f64::INFINITY;
        assert!(ServerAdam::from_state(0.1, 0.9, 0.999, 1e-8, 1, m, bad).is_err());
    }

    #[test]
    fn adam_validates_parameters() {
        let p = ModelParams::zeros(1, 1);
        assert!(ServerAdam::with_betas(&p, 0.0, 0.9, 0.999, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 1.0, 0.999, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 0.9, -0.1, 1e-8).is_err());
        assert!(ServerAdam::with_betas(&p, 0.1, 0.9, 0.999, 0.0).is_err());
        let mut adam = ServerAdam::new(&p, 0.1).unwrap();
        let mut p2 = ModelParams::zeros(2, 1);
        let u2 = ModelParams::zeros(2, 1);
        assert!(
            adam.step(&mut p2, &u2).is_err(),
            "shape mismatch with state"
        );
    }
}
