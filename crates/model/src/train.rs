//! Local mini-batch SGD over a token array — the inner loop of
//! `ModelUpdateFromBucket` (Algorithm 1, lines 15–22).
//!
//! The caller clones θ_t into a working copy Φ, runs one pass of batched
//! SGD over the bucket's token array, and turns `Φ − θ_t` into a sparse
//! delta (clipping is the caller's job; this module only trains).

use std::collections::BTreeSet;

use rand::{seq::SliceRandom, Rng};

use crate::error::ModelError;
use crate::grad::SparseGrad;
use crate::loss::{forward_backward, Loss, Scratch};
use crate::negative::NegativeSampler;
use crate::params::{ParamsView, ParamsViewMut};

use plp_data::window::{pairs_from_sequence_into, Pair};

/// Hyper-parameters of a local SGD pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSgdConfig {
    /// Learning rate η.
    pub learning_rate: f64,
    /// Batch size β (paper default 32).
    pub batch_size: usize,
    /// Symmetric context window `win` (paper default 2).
    pub window: usize,
    /// Negatives per positive `neg` (paper default 16).
    pub negatives: usize,
    /// The training objective.
    pub loss: Loss,
}

impl LocalSgdConfig {
    /// Validates the parameter domains.
    ///
    /// # Errors
    /// Returns [`ModelError::BadConfig`] naming the first bad field.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ModelError::BadConfig {
                name: "learning_rate",
                expected: "finite and > 0",
            });
        }
        if self.batch_size == 0 {
            return Err(ModelError::BadConfig {
                name: "batch_size",
                expected: ">= 1",
            });
        }
        if self.window == 0 {
            return Err(ModelError::BadConfig {
                name: "window",
                expected: ">= 1",
            });
        }
        if self.negatives == 0 {
            return Err(ModelError::BadConfig {
                name: "negatives",
                expected: ">= 1",
            });
        }
        Ok(())
    }
}

/// Rows touched during a local pass, for sparse-delta extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedRows {
    /// Embedding rows updated.
    pub embedding: BTreeSet<usize>,
    /// Context rows updated.
    pub context: BTreeSet<usize>,
    /// Bias entries updated.
    pub bias: BTreeSet<usize>,
}

/// Outcome of a local SGD pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean per-example loss across all pairs.
    pub mean_loss: f64,
    /// Number of (target, context) pairs trained on.
    pub pairs: usize,
    /// Number of batches executed.
    pub batches: usize,
    /// Which parameter rows were updated.
    pub touched: TouchedRows,
}

/// Reusable buffers for [`train_on_tokens_with_scratch`]: the pair list,
/// the per-batch gradient (with its row pool), the forward/backward
/// scratch, and the negative-sample candidates. Every buffer is cleared at
/// its point of use and retains capacity, so a worker that reuses one
/// `TrainScratch` across buckets performs no heap allocation in steady
/// state — once each buffer has grown to its bucket-working-set size.
///
/// Scratch contents never influence results: training with a warm scratch
/// is bit-identical to training with a fresh one.
#[derive(Debug, Default)]
pub struct TrainScratch {
    pairs: Vec<Pair>,
    grad: SparseGrad,
    scratch: Scratch,
    negatives: Vec<usize>,
}

impl TrainScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TrainScratch::default()
    }

    /// Number of pooled gradient-row buffers available for reuse (a
    /// diagnostic hook for allocation-freedom tests).
    pub fn grad_pool_len(&self) -> usize {
        self.grad.pool_len()
    }
}

/// Runs one pass of mini-batch SGD over `tokens`, mutating `params` in
/// place: for each batch `b`, `Φ ← Φ − η · (1/|b|) Σ ∇J` (Algorithm 1,
/// line 19). Gradients within a batch are all evaluated at the same Φ.
///
/// Allocating convenience wrapper over [`train_on_tokens_with_scratch`];
/// both draw the same RNG sequence and produce bit-identical parameters.
///
/// # Errors
/// Propagates configuration, token-range and non-finite errors; on error
/// `params` may be partially updated and should be discarded by the caller.
pub fn train_on_tokens<R: Rng + ?Sized, P: ParamsViewMut + ?Sized>(
    rng: &mut R,
    params: &mut P,
    tokens: &[usize],
    config: &LocalSgdConfig,
    sampler: &NegativeSampler,
) -> Result<TrainStats, ModelError> {
    let mut scratch = TrainScratch::new();
    let mut touched = TouchedRows::default();
    let stats = train_on_tokens_with_scratch(
        rng,
        params,
        tokens,
        config,
        sampler,
        &mut scratch,
        Some(&mut touched),
    )?;
    Ok(TrainStats { touched, ..stats })
}

/// The scratch-reusing core of [`train_on_tokens`]. `params` may be a dense
/// [`crate::params::ModelParams`] or the copy-on-write overlay
/// ([`crate::journal::CowParams`]) of the clone-free bucket-delta path.
///
/// `touched` is an optional out-parameter: pass `Some` to record which rows
/// were updated (the clone-and-diff delta path needs it), `None` to skip
/// the bookkeeping entirely (the row journal already knows its touched
/// rows). The returned stats carry an empty `touched` set; the wrapper
/// fills it in.
///
/// # Errors
/// Same contract as [`train_on_tokens`].
pub fn train_on_tokens_with_scratch<R: Rng + ?Sized, P: ParamsViewMut + ?Sized>(
    rng: &mut R,
    params: &mut P,
    tokens: &[usize],
    config: &LocalSgdConfig,
    sampler: &NegativeSampler,
    scratch: &mut TrainScratch,
    mut touched: Option<&mut TouchedRows>,
) -> Result<TrainStats, ModelError> {
    config.validate()?;
    let vocab = params.vocab_size();
    let dim = params.dim();
    let TrainScratch {
        pairs,
        grad,
        scratch: fb_scratch,
        negatives,
    } = scratch;

    // Same draw sequence as the paper's `generateBatches`: window, then one
    // shuffle, then fixed-size chunks (`validate` guarantees batch_size ≥ 1).
    pairs_from_sequence_into(tokens, config.window, pairs);
    pairs.shuffle(rng);

    let mut total_loss = 0.0;
    let mut trained_pairs = 0usize;
    let mut batches = 0usize;
    for batch in pairs.chunks(config.batch_size) {
        let scale = 1.0 / batch.len() as f64;
        grad.recycle();
        // Journal-pooled accumulation: the loss defers its context/bias
        // touches and the flush below replays them grouped by row, walking
        // each gradient row contiguously instead of chasing the map once
        // per candidate. Bit-identical to immediate accumulation (every
        // pair evaluates at the same Φ and per-row order is preserved);
        // see `SparseGrad::flush_pooled_batch`.
        grad.begin_pooled_batch(dim);
        for &(target, context) in batch {
            sampler.sample_into(rng, vocab, config.negatives, context, negatives)?;
            let l = forward_backward(
                params,
                config.loss,
                target,
                context,
                negatives,
                scale,
                grad,
                fb_scratch,
            )?;
            total_loss += l;
            trained_pairs += 1;
        }
        grad.flush_pooled_batch();
        if !grad.all_finite() {
            return Err(ModelError::NonFinite {
                at: "batch gradient",
            });
        }
        if let Some(t) = touched.as_deref_mut() {
            t.embedding.extend(grad.embedding.keys().copied());
            t.context.extend(grad.context.keys().copied());
            t.bias.extend(grad.bias.keys().copied());
        }
        grad.apply_to(params, -config.learning_rate)?;
        batches += 1;
    }

    Ok(TrainStats {
        mean_loss: if trained_pairs == 0 {
            0.0
        } else {
            total_loss / trained_pairs as f64
        },
        pairs: trained_pairs,
        batches,
        touched: TouchedRows::default(),
    })
}

/// Mean validation loss of `(target, context)` pairs drawn from `tokens`
/// under the model, using fresh negatives (no parameter updates).
///
/// # Errors
/// Propagates token-range errors.
pub fn validation_loss<R: Rng + ?Sized, P: ParamsView + ?Sized>(
    rng: &mut R,
    params: &P,
    tokens: &[usize],
    config: &LocalSgdConfig,
    sampler: &NegativeSampler,
) -> Result<f64, ModelError> {
    config.validate()?;
    let vocab = params.vocab_size();
    let mut scratch = Scratch::new();
    let pairs = plp_data::window::pairs_from_sequence(tokens, config.window);
    if pairs.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for (target, context) in &pairs {
        let negatives = sampler.sample(rng, vocab, config.negatives, *context)?;
        total += crate::loss::example_loss(
            params,
            config.loss,
            *target,
            *context,
            &negatives,
            &mut scratch,
        )?;
    }
    Ok(total / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> LocalSgdConfig {
        LocalSgdConfig {
            learning_rate: 0.1,
            batch_size: 8,
            window: 2,
            negatives: 4,
            loss: Loss::SampledSoftmax,
        }
    }

    /// A toy corpus where tokens co-occur in two disjoint communities.
    fn corpus() -> Vec<usize> {
        let mut t = Vec::new();
        for _ in 0..30 {
            t.extend_from_slice(&[0, 1, 2, 3]);
            t.extend_from_slice(&[10, 11, 12, 13]);
        }
        t
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ModelParams::init(&mut rng, 20, 8).unwrap();
        let cfg = config();
        let sampler = NegativeSampler::Uniform;
        let tokens = corpus();
        let before = validation_loss(&mut rng, &params, &tokens, &cfg, &sampler).unwrap();
        for _ in 0..5 {
            train_on_tokens(&mut rng, &mut params, &tokens, &cfg, &sampler).unwrap();
        }
        let after = validation_loss(&mut rng, &params, &tokens, &cfg, &sampler).unwrap();
        assert!(after < before, "loss {after} !< {before}");
        assert!(params.all_finite());
    }

    #[test]
    fn stats_account_for_all_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ModelParams::init(&mut rng, 20, 4).unwrap();
        let tokens = corpus();
        let cfg = config();
        let stats = train_on_tokens(
            &mut rng,
            &mut params,
            &tokens,
            &cfg,
            &NegativeSampler::Uniform,
        )
        .unwrap();
        let expected = plp_data::window::pairs_from_sequence(&tokens, cfg.window).len();
        assert_eq!(stats.pairs, expected);
        assert_eq!(stats.batches, expected.div_ceil(cfg.batch_size));
        assert!(stats.mean_loss > 0.0);
        // Touched rows include every distinct token as a target.
        for t in [0usize, 1, 2, 3, 10, 11, 12, 13] {
            assert!(stats.touched.embedding.contains(&t));
        }
    }

    #[test]
    fn empty_tokens_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ModelParams::init(&mut rng, 10, 4).unwrap();
        let before = params.clone();
        let stats = train_on_tokens(
            &mut rng,
            &mut params,
            &[],
            &config(),
            &NegativeSampler::Uniform,
        )
        .unwrap();
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.mean_loss, 0.0);
        assert_eq!(params, before);
        let v =
            validation_loss(&mut rng, &params, &[], &config(), &NegativeSampler::Uniform).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn config_validation() {
        let mut c = config();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.window = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.negatives = 0;
        assert!(c.validate().is_err());
        assert!(config().validate().is_ok());
    }

    #[test]
    fn out_of_range_tokens_are_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ModelParams::init(&mut rng, 5, 4).unwrap();
        let r = train_on_tokens(
            &mut rng,
            &mut params,
            &[1, 99, 2],
            &config(),
            &NegativeSampler::Uniform,
        );
        assert!(r.is_err());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let tokens = corpus();
        let cfg = config();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = ModelParams::init(&mut rng, 20, 4).unwrap();
            train_on_tokens(&mut rng, &mut p, &tokens, &cfg, &NegativeSampler::Uniform).unwrap();
            p
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pooled_training_is_bit_identical_to_unpooled_reference() {
        // Re-run the exact batch loop of `train_on_tokens_with_scratch`
        // with immediate (unpooled) accumulation and the same RNG draw
        // sequence. The journal-pooled walk reorders only *where* each
        // row's touches are applied, never their per-row order, so the
        // trained parameters must agree bit for bit.
        let tokens = corpus();
        let sampler = NegativeSampler::Uniform;
        for loss in [Loss::SampledSoftmax, Loss::Sgns] {
            let cfg = LocalSgdConfig { loss, ..config() };

            let mut rng = StdRng::seed_from_u64(7);
            let mut reference = ModelParams::init(&mut rng, 20, 8).unwrap();
            let mut pairs = plp_data::window::pairs_from_sequence(&tokens, cfg.window);
            pairs.shuffle(&mut rng);
            let mut grad = SparseGrad::new();
            let mut fb = Scratch::new();
            let mut negatives = Vec::new();
            for batch in pairs.chunks(cfg.batch_size) {
                let scale = 1.0 / batch.len() as f64;
                grad.recycle();
                for &(target, context) in batch {
                    sampler
                        .sample_into(&mut rng, 20, cfg.negatives, context, &mut negatives)
                        .unwrap();
                    forward_backward(
                        &reference, cfg.loss, target, context, &negatives, scale, &mut grad,
                        &mut fb,
                    )
                    .unwrap();
                }
                grad.apply_to(&mut reference, -cfg.learning_rate).unwrap();
            }

            let mut rng = StdRng::seed_from_u64(7);
            let mut pooled = ModelParams::init(&mut rng, 20, 8).unwrap();
            train_on_tokens_with_scratch(
                &mut rng,
                &mut pooled,
                &tokens,
                &cfg,
                &sampler,
                &mut TrainScratch::new(),
                None,
            )
            .unwrap();

            assert_eq!(pooled, reference, "{loss:?}: pooled != unpooled");
        }
    }

    #[test]
    fn warm_scratch_is_bit_identical_and_reuses_buffers() {
        let tokens = corpus();
        let cfg = config();
        let mut scratch = TrainScratch::new();

        let run = |scratch: &mut TrainScratch| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut p = ModelParams::init(&mut rng, 20, 4).unwrap();
            train_on_tokens_with_scratch(
                &mut rng,
                &mut p,
                &tokens,
                &cfg,
                &NegativeSampler::Uniform,
                scratch,
                None,
            )
            .unwrap();
            p
        };

        let cold = run(&mut scratch);
        let pool_after_first = scratch.grad_pool_len();
        let warm = run(&mut scratch);
        assert_eq!(cold, warm, "scratch state must not influence results");
        assert_eq!(
            scratch.grad_pool_len(),
            pool_after_first,
            "identical passes reuse pooled rows instead of growing the pool"
        );

        // And the scratch path matches the allocating wrapper bit for bit.
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = ModelParams::init(&mut rng, 20, 4).unwrap();
        let stats =
            train_on_tokens(&mut rng, &mut p, &tokens, &cfg, &NegativeSampler::Uniform).unwrap();
        assert_eq!(p, warm);
        assert!(stats.pairs > 0);
    }
}
