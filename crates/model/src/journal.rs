//! Copy-on-write row journal: the clone-free bucket-delta path.
//!
//! Algorithm 1 (lines 15–22) computes each sampled user-bucket's update as
//! `Φ − θ_t`, where Φ starts from the current global parameters θ_t and is
//! trained locally. A naive implementation clones all of θ_t — O(L·dim)
//! per bucket — even though negative sampling guarantees local SGD touches
//! only `neg + 1` rows per example (§3.2). [`RowJournal`] + [`CowParams`]
//! replace the clone with an overlay: reads fall through to the immutable
//! base θ_t, and the *first mutable touch* of a row snapshots it into the
//! journal. After training, the journal holds exactly the touched rows at
//! their Φ values, so the sparse delta `Φ − θ_t` falls out of one walk over
//! the overlay — no dense clone, no dense subtraction, and (with a warm
//! buffer pool) no allocation in steady state.

use plp_linalg::ops;

use crate::grad::{pooled_zeroed, SparseGrad};
use crate::params::{ModelParams, ParamsView, ParamsViewMut};

/// A slot-indexed overlay of touched rows: `slots[row]` holds
/// `entry index + 1` (0 = untouched), so every read and write on the SGNS
/// hot path is one array index instead of an ordered-map walk. `slots`
/// grows lazily to the highest touched row and is surgically zeroed on
/// drain — O(touched), never O(vocab) — so a pooled journal reused across
/// buckets keeps its table warm. Entries live in touch order; drains sort
/// by row first, which keeps the produced deltas in the same ascending-row
/// order (and therefore bit-identical) as the historical BTreeMap walk.
#[derive(Debug, Default)]
struct RowOverlay<T> {
    slots: Vec<u32>,
    entries: Vec<(usize, T)>,
}

impl<T> RowOverlay<T> {
    #[inline]
    fn get(&self, r: usize) -> Option<&T> {
        match self.slots.get(r) {
            Some(&s) if s != 0 => Some(&self.entries[(s - 1) as usize].1),
            _ => None,
        }
    }

    #[inline]
    fn get_mut_or_insert_with(&mut self, r: usize, make: impl FnOnce() -> T) -> &mut T {
        if self.slots.len() <= r {
            self.slots.resize(r + 1, 0);
        }
        let s = self.slots[r];
        if s == 0 {
            self.entries.push((r, make()));
            self.slots[r] = u32::try_from(self.entries.len()).expect("< 2^32 touched rows");
            &mut self.entries.last_mut().expect("just pushed").1
        } else {
            &mut self.entries[(s - 1) as usize].1
        }
    }

    /// Sorts entries into ascending-row order and clears the touched slots,
    /// leaving `entries` ready to drain. O(touched · log touched).
    fn seal_for_drain(&mut self) {
        self.entries.sort_unstable_by_key(|e| e.0);
        for &(r, _) in &self.entries {
            self.slots[r] = 0;
        }
    }
}

/// The overlay of touched rows: embedding/context rows and bias entries
/// that have been mutably touched through a [`CowParams`] view, holding
/// their current (local Φ) values. Row buffers are recycled through an
/// internal pool across [`RowJournal::take_delta`]/[`RowJournal::reset`]
/// cycles, so a worker that reuses one journal across buckets stops
/// allocating once the pool covers its working set.
#[derive(Debug, Default)]
pub struct RowJournal {
    embedding: RowOverlay<Vec<f64>>,
    context: RowOverlay<Vec<f64>>,
    bias: RowOverlay<f64>,
    pool: Vec<Vec<f64>>,
}

impl RowJournal {
    /// An empty journal; its pool grows on first use.
    pub fn new() -> Self {
        RowJournal::default()
    }

    /// Number of journalled rows/entries across all three tensors.
    pub fn touched_rows(&self) -> usize {
        self.embedding.entries.len() + self.context.entries.len() + self.bias.entries.len()
    }

    /// `true` iff no row has been touched since the last
    /// [`RowJournal::take_delta`] or [`RowJournal::reset`].
    pub fn is_clean(&self) -> bool {
        self.touched_rows() == 0
    }

    /// Number of pooled row buffers available for reuse (a diagnostic hook
    /// for allocation-freedom tests).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Discards all journalled state without producing a delta, recycling
    /// the row buffers. This is the recovery path after a failed or
    /// panicked bucket: the next bucket must start from a clean overlay, or
    /// stale Φ rows would leak into its view of θ.
    pub fn reset(&mut self) {
        let RowJournal {
            embedding,
            context,
            bias,
            pool,
        } = self;
        embedding.seal_for_drain();
        for (_, v) in embedding.entries.drain(..) {
            pool.push(v);
        }
        context.seal_for_drain();
        for (_, v) in context.entries.drain(..) {
            pool.push(v);
        }
        bias.seal_for_drain();
        bias.entries.clear();
    }

    /// Drains the journal into the sparse bucket delta `Φ − θ`, leaving the
    /// journal clean and its buffers pooled for the next bucket.
    ///
    /// `base` must be the same θ the [`CowParams`] view was built over.
    /// Semantics match [`SparseGrad::from_delta`] bit for bit: each touched
    /// row stores `Φ[r] − θ[r]` (computed element-wise with the unrolled
    /// kernel — `x + (−1)·y` is IEEE-identical to `x − y`), and rows whose
    /// delta is exactly zero everywhere are dropped rather than stored.
    pub fn take_delta(&mut self, base: &ModelParams) -> SparseGrad {
        let mut g = SparseGrad::new();
        let RowJournal {
            embedding,
            context,
            bias,
            pool,
        } = self;
        embedding.seal_for_drain();
        for (r, mut v) in embedding.entries.drain(..) {
            ops::axpy_unchecked(-1.0, base.embedding.row(r), &mut v);
            if v.iter().any(|&x| x != 0.0) {
                g.embedding.insert(r, v);
            } else {
                pool.push(v);
            }
        }
        context.seal_for_drain();
        for (r, mut v) in context.entries.drain(..) {
            ops::axpy_unchecked(-1.0, base.context.row(r), &mut v);
            if v.iter().any(|&x| x != 0.0) {
                g.context.insert(r, v);
            } else {
                pool.push(v);
            }
        }
        bias.seal_for_drain();
        for (r, b) in bias.entries.drain(..) {
            let d = b - base.bias[r];
            if d != 0.0 {
                g.bias.insert(r, d);
            }
        }
        g
    }

    /// Pops a pooled buffer (or allocates) and fills it with a copy of
    /// `src` — the snapshot taken on a row's first mutable touch.
    fn copied_row(pool: &mut Vec<Vec<f64>>, src: &[f64]) -> Vec<f64> {
        let mut v = pooled_zeroed(pool, 0);
        v.extend_from_slice(src);
        v
    }
}

/// A copy-on-write view over base parameters θ: a [`ParamsView`] /
/// [`ParamsViewMut`] whose reads fall through to `base` until a row is
/// mutably touched, at which point the row is snapshotted into the journal
/// and all further access (read or write) goes to the journalled copy.
///
/// Training through this view is bit-identical to training a dense clone of
/// `base`: every read sees the same values, every write lands on a
/// faithful copy of the row it would have landed on.
#[derive(Debug)]
pub struct CowParams<'a> {
    base: &'a ModelParams,
    journal: &'a mut RowJournal,
}

impl<'a> CowParams<'a> {
    /// Wraps `base` with `journal` as the mutation overlay.
    ///
    /// The journal is expected to be clean (typically freshly
    /// [`RowJournal::reset`] or drained by [`RowJournal::take_delta`]);
    /// stale entries from a *different* base would shadow `base`'s rows.
    pub fn new(base: &'a ModelParams, journal: &'a mut RowJournal) -> Self {
        CowParams { base, journal }
    }

    /// The wrapped base parameters.
    pub fn base(&self) -> &ModelParams {
        self.base
    }
}

impl ParamsView for CowParams<'_> {
    fn vocab_size(&self) -> usize {
        self.base.vocab_size()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn embedding_row(&self, r: usize) -> &[f64] {
        self.journal
            .embedding
            .get(r)
            .map(|v| v.as_slice())
            .unwrap_or_else(|| self.base.embedding.row(r))
    }

    fn context_row(&self, r: usize) -> &[f64] {
        self.journal
            .context
            .get(r)
            .map(|v| v.as_slice())
            .unwrap_or_else(|| self.base.context.row(r))
    }

    fn bias_at(&self, r: usize) -> f64 {
        self.journal
            .bias
            .get(r)
            .copied()
            .unwrap_or_else(|| self.base.bias[r])
    }
}

impl ParamsViewMut for CowParams<'_> {
    fn embedding_row_mut(&mut self, r: usize) -> &mut [f64] {
        let base = self.base;
        let RowJournal {
            embedding, pool, ..
        } = &mut *self.journal;
        embedding.get_mut_or_insert_with(r, || RowJournal::copied_row(pool, base.embedding.row(r)))
    }

    fn context_row_mut(&mut self, r: usize) -> &mut [f64] {
        let base = self.base;
        let RowJournal { context, pool, .. } = &mut *self.journal;
        context.get_mut_or_insert_with(r, || RowJournal::copied_row(pool, base.context.row(r)))
    }

    fn bias_at_mut(&mut self, r: usize) -> &mut f64 {
        let base = self.base;
        self.journal.bias.get_mut_or_insert_with(r, || base.bias[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::negative::NegativeSampler;
    use crate::train::{train_on_tokens, LocalSgdConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_params() -> ModelParams {
        let mut rng = StdRng::seed_from_u64(41);
        let mut p = ModelParams::init(&mut rng, 12, 6).unwrap();
        p.context.map_inplace(|x| x + 0.25);
        for (i, b) in p.bias.iter_mut().enumerate() {
            *b = 0.1 * i as f64;
        }
        p
    }

    #[test]
    fn reads_fall_through_until_first_write() {
        let base = base_params();
        let mut journal = RowJournal::new();
        let mut cow = CowParams::new(&base, &mut journal);
        assert_eq!(cow.vocab_size(), 12);
        assert_eq!(cow.dim(), 6);
        assert_eq!(cow.embedding_row(3), base.embedding.row(3));
        assert_eq!(cow.context_row(5), base.context.row(5));
        assert_eq!(cow.bias_at(2), base.bias[2]);

        cow.embedding_row_mut(3)[0] = 99.0;
        *cow.bias_at_mut(2) += 1.0;
        assert_eq!(cow.embedding_row(3)[0], 99.0, "reads see the overlay");
        assert_eq!(cow.embedding_row(3)[1], base.embedding.row(3)[1]);
        assert_eq!(cow.bias_at(2), base.bias[2] + 1.0);
        assert_eq!(base.embedding.row(3)[0], base.embedding.get(3, 0));
        assert_eq!(journal.touched_rows(), 2);
    }

    #[test]
    fn take_delta_matches_from_delta_on_a_cloned_copy() {
        let base = base_params();

        // Reference path: dense clone, mutate, diff.
        let mut phi = base.clone();
        phi.embedding.row_mut(1)[2] += 0.5;
        phi.context.row_mut(4)[0] -= 0.25;
        phi.bias[7] += 2.0;
        // Touch-but-don't-change row 9: must be dropped from the delta.
        phi.embedding.row_mut(9)[0] += 0.0;
        let want = SparseGrad::from_delta(&base, &phi, [1usize, 9], [4usize], [7usize]);

        // Journal path: same mutations through the overlay.
        let mut journal = RowJournal::new();
        let mut cow = CowParams::new(&base, &mut journal);
        cow.embedding_row_mut(1)[2] += 0.5;
        cow.context_row_mut(4)[0] -= 0.25;
        *cow.bias_at_mut(7) += 2.0;
        cow.embedding_row_mut(9)[0] += 0.0;
        let got = journal.take_delta(&base);

        assert_eq!(got, want);
        assert!(journal.is_clean(), "take_delta drains the journal");
        assert_eq!(journal.pool_len(), 1, "the all-zero row was recycled");
    }

    #[test]
    fn journaled_training_is_bit_identical_to_cloned_training() {
        let base = base_params();
        let tokens: Vec<usize> = (0..48).map(|i| (i * 5) % 12).collect();
        let cfg = LocalSgdConfig {
            learning_rate: 0.05,
            batch_size: 8,
            window: 2,
            negatives: 3,
            loss: Loss::SampledSoftmax,
        };

        // Reference: the historical clone-and-diff path.
        let mut phi = base.clone();
        let mut rng = StdRng::seed_from_u64(77);
        let stats =
            train_on_tokens(&mut rng, &mut phi, &tokens, &cfg, &NegativeSampler::Uniform).unwrap();
        let want = SparseGrad::from_delta(
            &base,
            &phi,
            stats.touched.embedding.iter().copied(),
            stats.touched.context.iter().copied(),
            stats.touched.bias.iter().copied(),
        );

        // Clone-free: same training through the overlay, same RNG seed.
        let mut journal = RowJournal::new();
        let mut cow = CowParams::new(&base, &mut journal);
        let mut rng = StdRng::seed_from_u64(77);
        train_on_tokens(&mut rng, &mut cow, &tokens, &cfg, &NegativeSampler::Uniform).unwrap();
        let got = journal.take_delta(&base);

        assert!(!got.is_empty());
        assert_eq!(got, want, "journal delta must equal clone-and-diff delta");
    }

    #[test]
    fn reset_recovers_a_dirty_journal() {
        let base = base_params();
        let mut journal = RowJournal::new();
        let mut cow = CowParams::new(&base, &mut journal);
        cow.embedding_row_mut(0)[0] = 5.0;
        cow.context_row_mut(1)[1] = 6.0;
        *cow.bias_at_mut(2) = 7.0;
        assert!(!journal.is_clean());
        journal.reset();
        assert!(journal.is_clean());
        assert_eq!(journal.pool_len(), 2, "row buffers are recycled");
        // A fresh view over the same journal sees pristine base values.
        let cow = CowParams::new(&base, &mut journal);
        assert_eq!(cow.embedding_row(0), base.embedding.row(0));
        assert_eq!(cow.bias_at(2), base.bias[2]);
    }
}
