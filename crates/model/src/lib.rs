//! The skip-gram negative-sampling (SGNS) location-embedding model.
//!
//! Implements the neural network of the paper's Figure 2: a one-hidden-layer
//! skip-gram with parameters θ = {W, W′, B′} — an `L × dim` embedding
//! matrix, an `L × dim` context matrix and an `L`-vector of output biases —
//! trained with a *uniform* sampled-softmax loss (§3.2; uniform because a
//! frequency-weighted proposal would leak the private location popularity).
//!
//! Modules:
//! * [`params`] — the three tensors, initialisation, snapshots,
//! * [`negative`] — uniform (private) and unigram (non-private ablation)
//!   negative samplers,
//! * [`loss`] — sampled-softmax and sigmoid-SGNS forward/backward with
//!   hand-derived gradients (verified against finite differences),
//! * [`grad`] — sparse per-batch/per-bucket gradient accumulators,
//! * [`journal`] — the copy-on-write row journal behind the clone-free
//!   bucket-delta path,
//! * [`clip`] — per-layer ℓ2 clipping (McMahan & Andrew: each tensor to
//!   `C/√|θ|`),
//! * [`train`] — mini-batch local SGD over a token array (Algorithm 1,
//!   lines 15–22, minus the clipping performed by the caller),
//! * [`optimizer`] — server-side SGD and (DP-)Adam over noisy aggregates,
//! * [`recommender`] — the deployment path of §3.3: `F(ζ)` profiles and
//!   cosine top-k recommendation,
//! * [`metrics`] — leave-one-out Hit-Rate@k evaluation and baselines,
//! * [`markov`] — the (DP-)Markov-chain baselines of the related work (§6),
//! * [`snapshot`] — versioned binary checkpoints and the embedding-only
//!   deployment bundle of §3.3,
//! * [`plps`] — the page-aligned, mmap-able PLPS v2 snapshot layout for
//!   zero-copy serving and hot-swap generation publishing.

pub mod clip;
pub mod error;
pub mod grad;
pub mod journal;
pub mod loss;
pub mod markov;
pub mod metrics;
pub mod negative;
pub mod optimizer;
pub mod params;
pub mod plps;
pub mod recommender;
pub mod snapshot;
pub mod train;

pub use error::{ModelError, SnapshotError};
pub use loss::Loss;
pub use negative::NegativeSampler;
pub use params::{ModelParams, ParamsView, ParamsViewMut};
pub use recommender::Recommender;
