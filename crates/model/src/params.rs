//! The model tensors θ = {W, W′, B′} of Figure 2.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use plp_linalg::{ops, Matrix};

use crate::error::ModelError;

/// Number of tensors in θ; per-layer clipping divides the clip budget by
/// `√NUM_TENSORS` (paper §4.1: "θ₀ = {W, W′, B′}, hence |θ| = 3, so we clip
/// the ℓ2-norm of each tensor to C/√3").
pub const NUM_TENSORS: usize = 3;

/// Skip-gram parameters: embedding matrix `W` (`L × dim`), context matrix
/// `W′` (`L × dim`, stored row-major by location like `W`), and the output
/// bias vector `B′` (`L`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// The input embedding matrix `W`.
    pub embedding: Matrix,
    /// The output/context matrix `W′`.
    pub context: Matrix,
    /// The output bias vector `B′`.
    pub bias: Vec<f64>,
}

impl ModelParams {
    /// word2vec-style initialisation: `W` uniform in
    /// `[-0.5/dim, 0.5/dim]`, `W′` and `B′` zero.
    ///
    /// # Errors
    /// `vocab_size` and `dim` must be ≥ 1.
    pub fn init<R: Rng + ?Sized>(
        rng: &mut R,
        vocab_size: usize,
        dim: usize,
    ) -> Result<Self, ModelError> {
        if vocab_size == 0 {
            return Err(ModelError::BadConfig {
                name: "vocab_size",
                expected: ">= 1",
            });
        }
        if dim == 0 {
            return Err(ModelError::BadConfig {
                name: "dim",
                expected: ">= 1",
            });
        }
        let half = 0.5 / dim as f64;
        let embedding = Matrix::from_fn(vocab_size, dim, |_, _| {
            rng.random::<f64>() * 2.0 * half - half
        });
        Ok(ModelParams {
            embedding,
            context: Matrix::zeros(vocab_size, dim),
            bias: vec![0.0; vocab_size],
        })
    }

    /// All-zero parameters of the given shape (useful for accumulators).
    pub fn zeros(vocab_size: usize, dim: usize) -> Self {
        ModelParams {
            embedding: Matrix::zeros(vocab_size, dim),
            context: Matrix::zeros(vocab_size, dim),
            bias: vec![0.0; vocab_size],
        }
    }

    /// Vocabulary size `L`.
    pub fn vocab_size(&self) -> usize {
        self.embedding.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.embedding.cols()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.embedding.len() + self.context.len() + self.bias.len()
    }

    /// `true` iff `other` has identical shape.
    pub fn same_shape(&self, other: &ModelParams) -> bool {
        self.vocab_size() == other.vocab_size() && self.dim() == other.dim()
    }

    /// ℓ2 norm of the *whole* flattened parameter vector.
    pub fn global_norm(&self) -> f64 {
        let e = self.embedding.frobenius_norm();
        let c = self.context.frobenius_norm();
        let b = ops::l2_norm(&self.bias);
        (e * e + c * c + b * b).sqrt()
    }

    /// Per-tensor ℓ2 norms `(‖W‖, ‖W′‖, ‖B′‖)`.
    pub fn tensor_norms(&self) -> (f64, f64, f64) {
        (
            self.embedding.frobenius_norm(),
            self.context.frobenius_norm(),
            ops::l2_norm(&self.bias),
        )
    }

    /// `self += alpha * other`, element-wise over all three tensors.
    ///
    /// # Errors
    /// Shapes must match.
    pub fn axpy(&mut self, alpha: f64, other: &ModelParams) -> Result<(), ModelError> {
        if !self.same_shape(other) {
            return Err(ModelError::ShapeMismatch {
                what: "ModelParams axpy",
            });
        }
        self.embedding.axpy(alpha, &other.embedding)?;
        self.context.axpy(alpha, &other.context)?;
        ops::axpy(alpha, &other.bias, &mut self.bias)?;
        Ok(())
    }

    /// `true` iff every parameter is finite.
    pub fn all_finite(&self) -> bool {
        self.embedding.all_finite() && self.context.all_finite() && ops::all_finite(&self.bias)
    }

    /// The three tensors as flat mutable slabs with their row lengths:
    /// `[(W, dim), (W′, dim), (B′, bias_chunk)]`.
    ///
    /// This is the row-range view the threaded noise phase partitions over:
    /// each slab is a sequence of rows (the bias vector is chunked into
    /// pseudo-rows of `bias_chunk` elements, the last possibly shorter) that
    /// can be split at any row boundary and handed to different workers.
    ///
    /// # Panics
    /// `bias_chunk` must be ≥ 1.
    pub fn row_slabs_mut(&mut self, bias_chunk: usize) -> [(&mut [f64], usize); 3] {
        assert!(bias_chunk >= 1, "bias_chunk must be >= 1");
        let dim = self.dim();
        let ModelParams {
            embedding,
            context,
            bias,
        } = self;
        [
            (embedding.as_mut_slice(), dim),
            (context.as_mut_slice(), dim),
            (bias.as_mut_slice(), bias_chunk),
        ]
    }

    /// A copy of the embedding matrix with rows normalised to unit length —
    /// what gets deployed to devices (§3.2: "the embedded vectors are
    /// normalized to unit length"; §3.3 footnote: "only the embedding matrix
    /// is deployed").
    pub fn deployable_embedding(&self) -> Matrix {
        self.embedding.normalized_rows()
    }
}

/// Read access to the three model tensors by row, abstracting over *where*
/// the rows live: a dense [`ModelParams`], or a copy-on-write overlay
/// ([`crate::journal::CowParams`]) that materialises rows lazily so the
/// per-bucket delta path never clones the full parameter set.
///
/// Out-of-range rows panic (mirroring `Matrix::row`); bounds are the
/// caller's contract, exactly as with the dense accessors.
pub trait ParamsView {
    /// Vocabulary size `L`.
    fn vocab_size(&self) -> usize;
    /// Embedding dimension.
    fn dim(&self) -> usize;
    /// Row `r` of the input embedding matrix `W`.
    fn embedding_row(&self, r: usize) -> &[f64];
    /// Row `r` of the output/context matrix `W′`.
    fn context_row(&self, r: usize) -> &[f64];
    /// Element `r` of the output bias vector `B′`.
    fn bias_at(&self, r: usize) -> f64;
}

/// Mutable row access on top of [`ParamsView`]. For a copy-on-write view,
/// the first mutable touch of a row snapshots it into the overlay; dense
/// parameters hand out their storage directly.
pub trait ParamsViewMut: ParamsView {
    /// Mutable row `r` of `W`.
    fn embedding_row_mut(&mut self, r: usize) -> &mut [f64];
    /// Mutable row `r` of `W′`.
    fn context_row_mut(&mut self, r: usize) -> &mut [f64];
    /// Mutable element `r` of `B′`.
    fn bias_at_mut(&mut self, r: usize) -> &mut f64;
}

impl ParamsView for ModelParams {
    fn vocab_size(&self) -> usize {
        ModelParams::vocab_size(self)
    }

    fn dim(&self) -> usize {
        ModelParams::dim(self)
    }

    fn embedding_row(&self, r: usize) -> &[f64] {
        self.embedding.row(r)
    }

    fn context_row(&self, r: usize) -> &[f64] {
        self.context.row(r)
    }

    fn bias_at(&self, r: usize) -> f64 {
        self.bias[r]
    }
}

impl ParamsViewMut for ModelParams {
    fn embedding_row_mut(&mut self, r: usize) -> &mut [f64] {
        self.embedding.row_mut(r)
    }

    fn context_row_mut(&mut self, r: usize) -> &mut [f64] {
        self.context.row_mut(r)
    }

    fn bias_at_mut(&mut self, r: usize) -> &mut f64 {
        &mut self.bias[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ModelParams::init(&mut rng, 100, 16).unwrap();
        assert_eq!(p.vocab_size(), 100);
        assert_eq!(p.dim(), 16);
        assert_eq!(p.num_params(), 100 * 16 * 2 + 100);
        let half = 0.5 / 16.0;
        assert!(p.embedding.as_slice().iter().all(|&x| x.abs() <= half));
        assert!(p.context.as_slice().iter().all(|&x| x == 0.0));
        assert!(p.bias.iter().all(|&x| x == 0.0));
        assert!(p.all_finite());
    }

    #[test]
    fn init_rejects_degenerate_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(ModelParams::init(&mut rng, 0, 8).is_err());
        assert!(ModelParams::init(&mut rng, 8, 0).is_err());
    }

    #[test]
    fn norms_and_axpy() {
        let mut a = ModelParams::zeros(3, 2);
        let mut b = ModelParams::zeros(3, 2);
        b.embedding.set(0, 0, 3.0);
        b.bias[1] = 4.0;
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.embedding.get(0, 0), 6.0);
        assert_eq!(a.bias[1], 8.0);
        assert!((a.global_norm() - 10.0).abs() < 1e-12);
        let (we, wc, wb) = a.tensor_norms();
        assert_eq!(we, 6.0);
        assert_eq!(wc, 0.0);
        assert_eq!(wb, 8.0);
        let wrong = ModelParams::zeros(2, 2);
        assert!(a.axpy(1.0, &wrong).is_err());
    }

    #[test]
    fn deployable_embedding_has_unit_rows() {
        let mut p = ModelParams::zeros(2, 2);
        p.embedding.set(0, 0, 3.0);
        p.embedding.set(0, 1, 4.0);
        let d = p.deployable_embedding();
        assert!((plp_linalg::ops::l2_norm(d.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(d.row(1), &[0.0, 0.0]);
        // Original untouched.
        assert_eq!(p.embedding.get(0, 0), 3.0);
    }

    #[test]
    fn finiteness_detection() {
        let mut p = ModelParams::zeros(2, 2);
        assert!(p.all_finite());
        p.context.set(1, 1, f64::NAN);
        assert!(!p.all_finite());
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ModelParams::init(&mut rng, 5, 3).unwrap();
        let s = serde_json::to_string(&p).unwrap();
        let back: ModelParams = serde_json::from_str(&s).unwrap();
        assert!(p.same_shape(&back));
    }
}
