//! Sampled-softmax and sigmoid-SGNS losses with hand-derived gradients.
//!
//! For a (target `x`, context `y`) pair with negatives `n₁..n_neg`, let
//! `u = W[x]` and candidates `c₀ = y, c₁..c_neg = negatives`, with logits
//! `sⱼ = u · W′[cⱼ] + B′[cⱼ]`.
//!
//! **Sampled softmax** (the paper's loss; with a *uniform* proposal the
//! log-correction term is a constant across candidates and cancels inside
//! the softmax): `p = softmax(s)`, `J = −log p₀`, and
//!
//! ```text
//! ∂J/∂W′[cⱼ] = (pⱼ − [j = 0]) · u
//! ∂J/∂B′[cⱼ] =  pⱼ − [j = 0]
//! ∂J/∂W[x]   =  Σⱼ (pⱼ − [j = 0]) · W′[cⱼ]
//! ```
//!
//! **Sigmoid SGNS** (the original word2vec objective; ablation variant):
//! `J = −log σ(s₀) − Σⱼ≥1 log σ(−sⱼ)` with coefficients `σ(s₀) − 1` for the
//! positive and `σ(sⱼ)` for negatives.
//!
//! Both sets of gradients are verified against central finite differences
//! in the test module.

use serde::{Deserialize, Serialize};

use plp_linalg::ops;

use crate::error::ModelError;
use crate::grad::SparseGrad;
use crate::params::ParamsView;

/// Which training objective to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Loss {
    /// Softmax cross-entropy over `{context} ∪ negatives` (the paper's
    /// sampled softmax with uniform proposal).
    #[default]
    SampledSoftmax,
    /// word2vec-style independent sigmoid objective.
    Sgns,
}

/// Reusable scratch buffers for a forward/backward pass, sized for
/// `neg + 1` candidates.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    logits: Vec<f64>,
    probs: Vec<f64>,
    grad_u: Vec<f64>,
}

impl Scratch {
    /// Creates empty scratch space (buffers grow on first use).
    pub fn new() -> Self {
        Scratch::default()
    }
}

fn check_token(t: usize, vocab: usize) -> Result<(), ModelError> {
    if t >= vocab {
        return Err(ModelError::TokenOutOfRange { token: t, vocab });
    }
    Ok(())
}

/// Computes the loss of one example and accumulates `scale · ∇J` into
/// `grad`. Returns the example loss.
///
/// `negatives` must not contain `context` (the samplers guarantee this);
/// duplicates among negatives are tolerated mathematically but reduce the
/// effective sample size.
///
/// Generic over [`ParamsView`], so the same pass runs against dense
/// parameters and the copy-on-write bucket overlay without code or
/// numerical divergence.
///
/// # Errors
/// Tokens must be within the vocabulary.
#[allow(clippy::too_many_arguments)]
pub fn forward_backward<P: ParamsView + ?Sized>(
    params: &P,
    loss: Loss,
    target: usize,
    context: usize,
    negatives: &[usize],
    scale: f64,
    grad: &mut SparseGrad,
    scratch: &mut Scratch,
) -> Result<f64, ModelError> {
    let vocab = params.vocab_size();
    check_token(target, vocab)?;
    check_token(context, vocab)?;
    for &n in negatives {
        check_token(n, vocab)?;
    }

    let u = params.embedding_row(target);
    // In pooled mode (the batched training walk), context/bias touches are
    // deferred: one copy of `u` into the batch pool, one record per
    // candidate, and the flush replays each row's records contiguously in
    // the exact per-row order they are issued here — so both modes produce
    // bit-identical gradients.
    let pooled = grad.pooled_mode();
    let slot = if pooled { grad.push_u_slot(u) } else { 0 };
    let k = negatives.len() + 1;

    scratch.grad_u.clear();
    scratch.grad_u.resize(params.dim(), 0.0);

    let loss_value = match loss {
        Loss::SampledSoftmax => {
            scratch.logits.clear();
            scratch.logits.reserve(k);
            scratch
                .logits
                .push(ops::dot_unchecked(u, params.context_row(context)) + params.bias_at(context));
            for &n in negatives {
                scratch
                    .logits
                    .push(ops::dot_unchecked(u, params.context_row(n)) + params.bias_at(n));
            }
            scratch.probs.resize(k, 0.0);
            ops::softmax_into(&scratch.logits, &mut scratch.probs)?;
            // -log p0, guarded against p0 underflow.
            let l = -(scratch.probs[0].max(f64::MIN_POSITIVE)).ln();
            for (j, &p) in scratch.probs.iter().enumerate() {
                let coef = if j == 0 { p - 1.0 } else { p };
                let c = if j == 0 { context } else { negatives[j - 1] };
                // ∂J/∂W′[c] += coef · u ; ∂J/∂B′[c] += coef.
                if pooled {
                    grad.defer_context_touch(c, scale * coef, slot);
                } else {
                    grad.add_context_row(c, scale * coef, u);
                    grad.add_bias(c, scale * coef);
                }
                // grad_u += coef · W′[c].
                ops::axpy(coef, params.context_row(c), &mut scratch.grad_u)?;
            }
            l
        }
        Loss::Sgns => {
            // Single fused pass per candidate: one `context_row` lookup
            // (reused for logit and `grad_u` update — the row is not
            // mutated in between) and one shared exponential for σ/log σ
            // (bit-identical to the unfused pair; pinned in plp-linalg).
            // Accumulation order into `l`, the deferred-touch journal, and
            // `grad_u` matches the historical two-pass walk exactly.
            let w0 = params.context_row(context);
            let s0 = ops::dot_unchecked(u, w0) + params.bias_at(context);
            let (sig0, ln_sig0) = ops::sigmoid_and_ln_sigmoid(s0);
            let mut l = -ln_sig0;
            let coef0 = sig0 - 1.0;
            if pooled {
                grad.defer_context_touch(context, scale * coef0, slot);
            } else {
                grad.add_context_row(context, scale * coef0, u);
                grad.add_bias(context, scale * coef0);
            }
            ops::axpy(coef0, w0, &mut scratch.grad_u)?;
            for &n in negatives {
                let wn = params.context_row(n);
                let s = ops::dot_unchecked(u, wn) + params.bias_at(n);
                let (coef, ln_sig_neg) = ops::sigmoid_and_ln_sigmoid_neg(s);
                l -= ln_sig_neg;
                if pooled {
                    grad.defer_context_touch(n, scale * coef, slot);
                } else {
                    grad.add_context_row(n, scale * coef, u);
                    grad.add_bias(n, scale * coef);
                }
                ops::axpy(coef, wn, &mut scratch.grad_u)?;
            }
            l
        }
    };

    grad.add_embedding_row(target, scale, &scratch.grad_u);
    if !loss_value.is_finite() {
        return Err(ModelError::NonFinite { at: "example loss" });
    }
    Ok(loss_value)
}

/// Loss of one example without touching any gradient (validation).
///
/// # Errors
/// Tokens must be within the vocabulary.
pub fn example_loss<P: ParamsView + ?Sized>(
    params: &P,
    loss: Loss,
    target: usize,
    context: usize,
    negatives: &[usize],
    scratch: &mut Scratch,
) -> Result<f64, ModelError> {
    let mut sink = SparseGrad::new();
    forward_backward(
        params, loss, target, context, negatives, 0.0, &mut sink, scratch,
    )
}

/// Numerically-stable `log σ(x) = −log(1 + e^{−x})`.
///
/// Reference form kept for tests; the training path uses the fused
/// `ops::sigmoid_and_ln_sigmoid{,_neg}` helpers, which are bit-identical.
#[cfg(test)]
fn ln_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ModelParams, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = ModelParams::init(&mut rng, 12, 5).unwrap();
        // Give context/bias non-zero values so gradients flow everywhere.
        p.context.map_inplace(|_| 0.1);
        for (i, b) in p.bias.iter_mut().enumerate() {
            *b = 0.01 * i as f64;
        }
        let mut rng2 = StdRng::seed_from_u64(13);
        p.context
            .map_inplace(|x| x + 0.05 * (rand::RngExt::random::<f64>(&mut rng2) - 0.5));
        (p, vec![3, 7, 9])
    }

    /// Central finite-difference check of every touched coordinate.
    fn finite_difference_check(loss: Loss) {
        let (params, negs) = setup();
        let target = 1usize;
        let context = 5usize;
        let mut scratch = Scratch::new();
        let mut grad = SparseGrad::new();
        forward_backward(
            &params,
            loss,
            target,
            context,
            &negs,
            1.0,
            &mut grad,
            &mut scratch,
        )
        .unwrap();

        let eps = 1e-6;
        let f = |p: &ModelParams| {
            let mut s = Scratch::new();
            example_loss(p, loss, target, context, &negs, &mut s).unwrap()
        };
        // Embedding row of the target.
        for d in 0..params.dim() {
            let mut plus = params.clone();
            plus.embedding.row_mut(target)[d] += eps;
            let mut minus = params.clone();
            minus.embedding.row_mut(target)[d] -= eps;
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            let ana = grad.embedding[&target][d];
            assert!(
                (num - ana).abs() < 1e-5,
                "dW[{target}][{d}]: {num} vs {ana}"
            );
        }
        // Context rows and biases of all candidates.
        for &c in [context].iter().chain(&negs) {
            for d in 0..params.dim() {
                let mut plus = params.clone();
                plus.context.row_mut(c)[d] += eps;
                let mut minus = params.clone();
                minus.context.row_mut(c)[d] -= eps;
                let num = (f(&plus) - f(&minus)) / (2.0 * eps);
                let ana = grad.context[&c][d];
                assert!((num - ana).abs() < 1e-5, "dW'[{c}][{d}]: {num} vs {ana}");
            }
            let mut plus = params.clone();
            plus.bias[c] += eps;
            let mut minus = params.clone();
            minus.bias[c] -= eps;
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            let ana = grad.bias[&c];
            assert!((num - ana).abs() < 1e-5, "dB'[{c}]: {num} vs {ana}");
        }
    }

    #[test]
    fn sampled_softmax_gradients_match_finite_differences() {
        finite_difference_check(Loss::SampledSoftmax);
    }

    #[test]
    fn sgns_gradients_match_finite_differences() {
        finite_difference_check(Loss::Sgns);
    }

    #[test]
    fn loss_is_positive_and_decreases_after_a_step() {
        let (mut params, negs) = setup();
        let mut scratch = Scratch::new();
        for loss in [Loss::SampledSoftmax, Loss::Sgns] {
            let before = example_loss(&params, loss, 1, 5, &negs, &mut scratch).unwrap();
            assert!(before > 0.0);
            // One SGD step on this single example.
            let mut grad = SparseGrad::new();
            forward_backward(&params, loss, 1, 5, &negs, 1.0, &mut grad, &mut scratch).unwrap();
            grad.apply_to(&mut params, -0.5).unwrap();
            let after = example_loss(&params, loss, 1, 5, &negs, &mut scratch).unwrap();
            assert!(after < before, "{loss:?}: {after} !< {before}");
        }
    }

    #[test]
    fn only_candidate_rows_are_touched() {
        let (params, negs) = setup();
        let mut scratch = Scratch::new();
        let mut grad = SparseGrad::new();
        forward_backward(
            &params,
            Loss::SampledSoftmax,
            1,
            5,
            &negs,
            1.0,
            &mut grad,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(grad.embedding.len(), 1);
        assert!(grad.embedding.contains_key(&1));
        assert_eq!(grad.context.len(), negs.len() + 1);
        assert_eq!(grad.bias.len(), negs.len() + 1);
        for &n in &negs {
            assert!(grad.context.contains_key(&n));
        }
        assert!(grad.context.contains_key(&5));
    }

    #[test]
    fn softmax_bias_gradients_sum_to_zero() {
        // Σⱼ (pⱼ − tⱼ) = 0: the bias gradients over candidates cancel.
        let (params, negs) = setup();
        let mut scratch = Scratch::new();
        let mut grad = SparseGrad::new();
        forward_backward(
            &params,
            Loss::SampledSoftmax,
            2,
            6,
            &negs,
            1.0,
            &mut grad,
            &mut scratch,
        )
        .unwrap();
        let total: f64 = grad.bias.values().sum();
        assert!(total.abs() < 1e-12, "bias grads sum to {total}");
    }

    #[test]
    fn rejects_out_of_range_tokens() {
        let (params, _) = setup();
        let mut scratch = Scratch::new();
        let mut grad = SparseGrad::new();
        let r = forward_backward(
            &params,
            Loss::SampledSoftmax,
            99,
            5,
            &[1],
            1.0,
            &mut grad,
            &mut scratch,
        );
        assert!(matches!(
            r,
            Err(ModelError::TokenOutOfRange { token: 99, .. })
        ));
        let r = example_loss(&params, Loss::Sgns, 1, 99, &[1], &mut scratch);
        assert!(r.is_err());
        let r = example_loss(&params, Loss::Sgns, 1, 5, &[99], &mut scratch);
        assert!(r.is_err());
    }

    #[test]
    fn ln_sigmoid_is_stable() {
        assert!((ln_sigmoid(0.0) - 0.5f64.ln()).abs() < 1e-12);
        assert!(ln_sigmoid(1000.0).abs() < 1e-12);
        assert!((ln_sigmoid(-1000.0) + 1000.0).abs() < 1e-9);
    }
}
