//! Compact binary model snapshots.
//!
//! §3.3 (footnote 1): "to reduce communication costs, only the embedding
//! matrix is deployed." This module provides both flavours: full-parameter
//! snapshots (server-side checkpointing) and embedding-only deployment
//! bundles (what ships to mobile devices), in a versioned little-endian
//! binary format.

use std::fs;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use plp_linalg::Matrix;

use crate::error::{ModelError, SnapshotError};
use crate::params::ModelParams;

const MAGIC_FULL: &[u8; 4] = b"PLPM";
const MAGIC_EMBED: &[u8; 4] = b"PLPE";
const VERSION: u8 = 1;

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

/// Drains `len` little-endian f64 values from the cursor in one bulk copy
/// plus 8-byte chunk conversion, instead of `len` cursor round-trips. The
/// caller has already verified `data.remaining() >= len * 8`.
fn get_f64s(data: &mut Bytes, len: usize) -> Vec<f64> {
    let mut raw = vec![0u8; len * 8];
    data.copy_to_slice(&mut raw);
    raw.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact yields 8-byte chunks")))
        .collect()
}

fn get_matrix(data: &mut Bytes) -> Result<Matrix, SnapshotError> {
    if data.remaining() < 8 {
        return Err(SnapshotError::TruncatedHeader {
            what: "matrix dims",
        });
    }
    let rows = data.get_u32_le() as usize;
    let cols = data.get_u32_le() as usize;
    let len = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(8).map(|_| n))
        .ok_or(SnapshotError::OverCeiling {
            what: "matrix dims overflow",
        })?;
    // Shared frame ceiling: a garbled dimension pair claiming a tensor
    // beyond MAX_FRAME_BYTES is rejected before any allocation.
    if plp_data::frame::checked_frame_len((len as u64).saturating_mul(8)).is_none() {
        return Err(SnapshotError::OverCeiling { what: "matrix" });
    }
    if data.remaining() < len * 8 {
        return Err(SnapshotError::TruncatedBody { what: "matrix" });
    }
    Matrix::from_vec(rows, cols, get_f64s(data, len)).map_err(|_| SnapshotError::Inconsistent {
        what: "matrix buffer",
    })
}

/// Encodes a full-parameter snapshot.
pub fn encode_params(params: &ModelParams) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + params.num_params() * 8 + 16);
    buf.put_slice(MAGIC_FULL);
    buf.put_u8(VERSION);
    put_matrix(&mut buf, &params.embedding);
    put_matrix(&mut buf, &params.context);
    buf.put_u32_le(params.bias.len() as u32);
    for &b in &params.bias {
        buf.put_f64_le(b);
    }
    buf.freeze()
}

/// Decodes a full-parameter snapshot.
///
/// # Errors
/// Returns [`ModelError::Snapshot`] with a typed [`SnapshotError`] on
/// truncation, magic/version mismatch or inconsistent tensor shapes.
pub fn decode_params(mut data: Bytes) -> Result<ModelParams, ModelError> {
    if data.remaining() < 5 {
        return Err(SnapshotError::TruncatedHeader {
            what: "snapshot header",
        }
        .into());
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC_FULL {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(SnapshotError::BadVersion {
            got: u32::from(version),
        }
        .into());
    }
    let embedding = get_matrix(&mut data)?;
    let context = get_matrix(&mut data)?;
    if data.remaining() < 4 {
        return Err(SnapshotError::TruncatedHeader {
            what: "bias length",
        }
        .into());
    }
    let blen = data.get_u32_le() as usize;
    if plp_data::frame::checked_frame_len((blen as u64).saturating_mul(8)).is_none() {
        return Err(SnapshotError::OverCeiling { what: "bias" }.into());
    }
    if data.remaining() < blen * 8 {
        return Err(SnapshotError::TruncatedBody { what: "bias" }.into());
    }
    let bias = get_f64s(&mut data, blen);
    if embedding.rows() != context.rows()
        || embedding.cols() != context.cols()
        || bias.len() != embedding.rows()
    {
        return Err(SnapshotError::Inconsistent {
            what: "snapshot tensor shapes",
        }
        .into());
    }
    Ok(ModelParams {
        embedding,
        context,
        bias,
    })
}

/// Encodes the deployment bundle: the unit-normalised embedding only.
pub fn encode_deployable(params: &ModelParams) -> Bytes {
    let embedding = params.deployable_embedding();
    let mut buf = BytesMut::with_capacity(13 + embedding.len() * 8);
    buf.put_slice(MAGIC_EMBED);
    buf.put_u8(VERSION);
    put_matrix(&mut buf, &embedding);
    buf.freeze()
}

/// Decodes a deployment bundle into the embedding matrix.
///
/// # Errors
/// Returns [`ModelError::Snapshot`] on a malformed bundle and
/// [`ModelError::NonFinite`] if the payload carries NaN/∞ values — a NaN
/// embedding row would silently vanish from every recommendation (top-k
/// skips NaN scores), so a corrupt bundle must fail at load, not at serve.
pub fn decode_deployable(mut data: Bytes) -> Result<Matrix, ModelError> {
    if data.remaining() < 5 {
        return Err(SnapshotError::TruncatedHeader {
            what: "bundle header",
        }
        .into());
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC_EMBED {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(SnapshotError::BadVersion {
            got: u32::from(version),
        }
        .into());
    }
    let embedding = get_matrix(&mut data)?;
    if !embedding.all_finite() {
        return Err(ModelError::NonFinite { at: "embedding" });
    }
    Ok(embedding)
}

/// Writes a full snapshot to disk.
///
/// # Errors
/// Returns [`ModelError::Io`] on filesystem failures.
pub fn save_params(params: &ModelParams, path: &Path) -> Result<(), ModelError> {
    fs::write(path, encode_params(params)).map_err(|e| ModelError::Io {
        message: e.to_string(),
    })
}

/// Reads a full snapshot from disk.
///
/// # Errors
/// Returns [`ModelError::Io`] on filesystem failures and
/// [`ModelError::Snapshot`] on a malformed snapshot.
pub fn load_params(path: &Path) -> Result<ModelParams, ModelError> {
    let data = fs::read(path).map_err(|e| ModelError::Io {
        message: e.to_string(),
    })?;
    decode_params(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> ModelParams {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = ModelParams::init(&mut rng, 7, 4).unwrap();
        p.context.map_inplace(|_| 0.25);
        p.bias[2] = -1.5;
        p
    }

    #[test]
    fn full_snapshot_round_trip() {
        let p = params();
        let bytes = encode_params(&p);
        let back = decode_params(bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn deployable_bundle_round_trip_is_normalised() {
        let p = params();
        let bytes = encode_deployable(&p);
        let emb = decode_deployable(bytes).unwrap();
        assert_eq!(emb.rows(), 7);
        assert_eq!(emb.cols(), 4);
        for r in 0..emb.rows() {
            let n = plp_linalg::ops::l2_norm(emb.row(r));
            assert!(n == 0.0 || (n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let p = params();
        let bytes = encode_params(&p);
        assert!(decode_params(bytes.slice(..3)).is_err());
        assert!(decode_params(bytes.slice(..bytes.len() - 8)).is_err());
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        assert!(decode_params(Bytes::from(raw)).is_err());
        let mut raw = bytes.to_vec();
        raw[4] = 77;
        assert!(decode_params(Bytes::from(raw)).is_err());
        // Full snapshot is not a deployment bundle and vice versa.
        assert!(decode_deployable(encode_params(&p)).is_err());
        assert!(decode_params(encode_deployable(&p)).is_err());
    }

    #[test]
    fn non_finite_bundle_payload_is_rejected_at_load() {
        let p = params();
        let bytes = encode_deployable(&p);
        let mut raw = bytes.to_vec();
        // Overwrite the first payload f64 (after 4B magic + 1B version +
        // 8B dims) with NaN: a silent-row corruption the old decoder let
        // straight through to serving.
        raw[13..21].copy_from_slice(&f64::NAN.to_le_bytes());
        let err = decode_deployable(Bytes::from(raw)).unwrap_err();
        assert!(
            matches!(err, ModelError::NonFinite { at: "embedding" }),
            "got: {err:?}"
        );
        let mut raw = bytes.to_vec();
        raw[13..21].copy_from_slice(&f64::NEG_INFINITY.to_le_bytes());
        assert!(decode_deployable(Bytes::from(raw)).is_err());
    }

    #[test]
    fn oversized_dim_claims_hit_the_frame_ceiling() {
        let p = params();
        let bytes = encode_params(&p);
        // Rewrite the embedding dims to claim a ~2^31-element matrix whose
        // byte size clears MAX_FRAME_BYTES without overflowing usize.
        let mut raw = bytes.to_vec();
        raw[5..9].copy_from_slice(&0x0001_0000u32.to_le_bytes());
        raw[9..13].copy_from_slice(&0x0001_0000u32.to_le_bytes());
        let err = decode_params(Bytes::from(raw)).unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::Snapshot(SnapshotError::OverCeiling { what: "matrix" })
            ),
            "got: {err:?}"
        );
    }

    #[test]
    fn decode_errors_are_typed() {
        let p = params();
        let bytes = encode_params(&p);
        assert_eq!(
            decode_params(bytes.slice(..3)).unwrap_err(),
            SnapshotError::TruncatedHeader {
                what: "snapshot header"
            }
            .into()
        );
        assert_eq!(
            decode_params(bytes.slice(..bytes.len() - 8)).unwrap_err(),
            SnapshotError::TruncatedBody { what: "bias" }.into()
        );
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        assert_eq!(
            decode_params(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadMagic.into()
        );
        let mut raw = bytes.to_vec();
        raw[4] = 77;
        assert_eq!(
            decode_params(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadVersion { got: 77 }.into()
        );
        // Truncation inside the embedding body is attributed to the matrix.
        assert_eq!(
            decode_params(bytes.slice(..20)).unwrap_err(),
            SnapshotError::TruncatedBody { what: "matrix" }.into()
        );
    }

    #[test]
    fn file_round_trip() {
        let p = params();
        let dir = std::env::temp_dir().join("plp_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.plpm");
        save_params(&p, &path).unwrap();
        assert_eq!(load_params(&path).unwrap(), p);
        assert!(load_params(&dir.join("missing.plpm")).is_err());
    }
}

#[cfg(test)]
mod corruption_props {
    //! Property tests: no damaged buffer may ever panic the decoders —
    //! corruption must surface as `ModelError`, because checkpoints and
    //! deployment bundles cross process and machine boundaries.

    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params(vocab: usize, dim: usize) -> ModelParams {
        let mut rng = StdRng::seed_from_u64((vocab * 31 + dim) as u64);
        ModelParams::init(&mut rng, vocab, dim).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn truncated_snapshots_error_not_panic(
            vocab in 2usize..9,
            dim in 1usize..5,
            cut_frac in 0usize..1000,
        ) {
            let bytes = encode_params(&sample_params(vocab, dim));
            let cut = cut_frac * bytes.len() / 1000;
            prop_assert!(cut < bytes.len());
            prop_assert!(decode_params(bytes.slice(..cut)).is_err());
        }

        #[test]
        fn truncated_bundles_error_not_panic(
            vocab in 2usize..9,
            dim in 1usize..5,
            cut_frac in 0usize..1000,
        ) {
            let bytes = encode_deployable(&sample_params(vocab, dim));
            let cut = cut_frac * bytes.len() / 1000;
            prop_assert!(decode_deployable(bytes.slice(..cut)).is_err());
        }

        #[test]
        fn bit_flips_never_panic(
            vocab in 2usize..9,
            dim in 1usize..5,
            at_frac in 0usize..1000,
            bit in 0usize..8,
        ) {
            let bytes = encode_params(&sample_params(vocab, dim));
            let mut raw = bytes.to_vec();
            let at = at_frac * raw.len() / 1000;
            raw[at] ^= 1 << bit;
            // A flip in the payload may still decode (the format carries
            // no integrity footer — the PLPC checkpoint layer adds one);
            // the property is that decoding never panics, and header
            // damage is always rejected.
            let result = decode_params(Bytes::from(raw));
            if at < 5 {
                prop_assert!(result.is_err(), "magic/version damage must be rejected");
            }
        }

        #[test]
        fn random_garbage_is_rejected(data in vec(0u32..256u32, 0usize..96)) {
            let bytes: Vec<u8> = data.iter().map(|&x| x as u8).collect();
            if !bytes.starts_with(MAGIC_FULL) {
                prop_assert!(decode_params(Bytes::from(bytes.clone())).is_err());
            }
            if !bytes.starts_with(MAGIC_EMBED) {
                prop_assert!(decode_deployable(Bytes::from(bytes)).is_err());
            }
        }

        #[test]
        fn swapped_dims_or_oversized_claims_are_rejected(
            vocab in 2usize..9,
            dim in 1usize..5,
            claimed in 0u32..10_000u32,
        ) {
            // Rewrite the claimed embedding row count; unless it happens
            // to match the real shape, decode must fail cleanly (shape
            // consistency or truncation), never over-read.
            let bytes = encode_params(&sample_params(vocab, dim));
            let mut raw = bytes.to_vec();
            raw[5..9].copy_from_slice(&claimed.to_le_bytes());
            let result = decode_params(Bytes::from(raw));
            if claimed as usize != vocab {
                prop_assert!(result.is_err());
            }
        }
    }
}
