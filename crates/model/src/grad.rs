//! Sparse gradient / model-delta accumulators.
//!
//! Negative sampling guarantees that each training example touches only
//! `neg + 1` rows of `W′`/`B′` and one row of `W` (§3.2: "during
//! back-propagation, only neg + 1 vectors in W or W′ are updated instead of
//! entire matrices"). Bucket deltas `g_h = Φ − θ_t` are therefore sparse in
//! rows; storing them that way makes per-layer norm computation and the
//! Gaussian sum accumulation cheap.

use std::collections::BTreeMap;

use plp_linalg::ops;

use crate::error::ModelError;
use crate::params::{ModelParams, ParamsViewMut};

/// Pops a recycled buffer from `pool` (or allocates one) and zero-fills it
/// to `len`. The shared row recycler of [`SparseGrad`] and the row journal:
/// once the pool is warm, taking a row performs no heap allocation.
pub(crate) fn pooled_zeroed(pool: &mut Vec<Vec<f64>>, len: usize) -> Vec<f64> {
    match pool.pop() {
        Some(mut v) => {
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => vec![0.0; len],
    }
}

/// One deferred context-row touch of the journal-pooled batch walk: the
/// candidate row, its position in the original accumulation sequence, the
/// pre-scaled coefficient, and which pooled `u`-row slot it multiplies.
#[derive(Debug, Clone, Copy)]
struct DeferredTouch {
    /// `(row << 32) | seq`. Sorting on this single key is equivalent to a
    /// stable sort by row — `seq` increments per push, so ties within a row
    /// keep their original accumulation order, which is what makes the
    /// pooled flush bit-identical to immediate accumulation.
    key: u64,
    /// Coefficient applied to both the context row (`coef · u`) and the
    /// bias entry (`+ coef`); already includes the batch scale.
    coef: f64,
    /// Index of the pooled target-embedding row in `u_slots`.
    slot: u32,
}

/// A row-sparse gradient (or model delta) with the same logical shape as
/// [`ModelParams`].
///
/// Rows live in `BTreeMap`s so iteration (and therefore floating-point
/// accumulation order in norms and dense sums) is deterministic — a
/// `HashMap`'s per-instance hash seed would make bit-identical reruns
/// impossible.
///
/// A private pool recycles row buffers across [`SparseGrad::recycle`]
/// cycles, so a gradient reused across batches stops allocating once it has
/// seen its working set. The pool is invisible to `Clone`/`PartialEq`: it
/// only affects capacity, never values.
///
/// # Pooled batch accumulation
///
/// The SGNS inner loop touches `neg + 1` context rows per pair in pair
/// order, which chases the gradient map (and the embedding table behind
/// it) all over memory. [`SparseGrad::begin_pooled_batch`] switches the
/// gradient into a deferred mode: the loss records each touch as a
/// `(row, seq, coef, u-slot)` tuple plus one copy of the pair's target row,
/// and [`SparseGrad::flush_pooled_batch`] sorts the records by
/// `(row, seq)` and walks each row's touches contiguously — one map entry
/// per distinct row instead of one per touch. Because every pair in a batch
/// evaluates at the same Φ and the per-row accumulation sequence is
/// preserved exactly, the flushed gradient is bit-identical to immediate
/// accumulation (asserted in the tests).
#[derive(Debug, Default)]
pub struct SparseGrad {
    /// Touched rows of the embedding matrix `W`.
    pub embedding: BTreeMap<usize, Vec<f64>>,
    /// Touched rows of the context matrix `W′`.
    pub context: BTreeMap<usize, Vec<f64>>,
    /// Touched entries of the bias vector `B′`.
    pub bias: BTreeMap<usize, f64>,
    /// Recycled row buffers, fed by `recycle` and drained by `add_*_row`.
    pool: Vec<Vec<f64>>,
    /// Deferred context/bias touches of the current pooled batch.
    pending: Vec<DeferredTouch>,
    /// Pooled copies of target-embedding rows, `u_dim` values per slot.
    u_slots: Vec<f64>,
    /// Row width of `u_slots` (the model dimension).
    u_dim: usize,
    /// Whether the gradient is currently in pooled (deferring) mode.
    pooled: bool,
}

impl Clone for SparseGrad {
    fn clone(&self) -> Self {
        SparseGrad {
            embedding: self.embedding.clone(),
            context: self.context.clone(),
            bias: self.bias.clone(),
            pool: Vec::new(),
            pending: Vec::new(),
            u_slots: Vec::new(),
            u_dim: 0,
            pooled: false,
        }
    }
}

impl PartialEq for SparseGrad {
    fn eq(&self, other: &Self) -> bool {
        self.embedding == other.embedding
            && self.context == other.context
            && self.bias == other.bias
    }
}

impl SparseGrad {
    /// An empty gradient.
    pub fn new() -> Self {
        SparseGrad::default()
    }

    /// `true` iff nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.embedding.is_empty() && self.context.is_empty() && self.bias.is_empty()
    }

    /// Number of touched rows across all tensors.
    pub fn touched_rows(&self) -> usize {
        self.embedding.len() + self.context.len() + self.bias.len()
    }

    /// Empties the gradient, moving its row buffers into the internal pool
    /// for reuse by later `add_*_row` calls. Equivalent to clearing, but
    /// allocation-free on the next fill of the same working set.
    pub fn recycle(&mut self) {
        while let Some((_, v)) = self.embedding.pop_first() {
            self.pool.push(v);
        }
        while let Some((_, v)) = self.context.pop_first() {
            self.pool.push(v);
        }
        self.bias.clear();
    }

    /// Number of pooled row buffers currently available for reuse (a
    /// diagnostic hook for allocation-freedom tests).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Adds `alpha * v` into embedding row `row`.
    pub fn add_embedding_row(&mut self, row: usize, alpha: f64, v: &[f64]) {
        let Self {
            embedding, pool, ..
        } = self;
        let e = embedding
            .entry(row)
            .or_insert_with(|| pooled_zeroed(pool, v.len()));
        ops::axpy_unchecked(alpha, v, e);
    }

    /// Adds `alpha * v` into context row `row`.
    pub fn add_context_row(&mut self, row: usize, alpha: f64, v: &[f64]) {
        let Self { context, pool, .. } = self;
        let e = context
            .entry(row)
            .or_insert_with(|| pooled_zeroed(pool, v.len()));
        ops::axpy_unchecked(alpha, v, e);
    }

    /// Adds `alpha` into bias entry `row`.
    pub fn add_bias(&mut self, row: usize, alpha: f64) {
        *self.bias.entry(row).or_insert(0.0) += alpha;
    }

    /// Enters pooled mode for one batch: subsequent touches pushed through
    /// [`SparseGrad::push_u_slot`] / [`SparseGrad::defer_context_touch`]
    /// are buffered instead of applied, until
    /// [`SparseGrad::flush_pooled_batch`] drains them. `dim` is the model
    /// dimension (the width of each pooled `u` row).
    pub fn begin_pooled_batch(&mut self, dim: usize) {
        self.pending.clear();
        self.u_slots.clear();
        self.u_dim = dim;
        self.pooled = true;
    }

    /// `true` while the gradient defers context/bias touches (between
    /// [`SparseGrad::begin_pooled_batch`] and
    /// [`SparseGrad::flush_pooled_batch`]).
    pub fn pooled_mode(&self) -> bool {
        self.pooled
    }

    /// Copies one target-embedding row into the batch pool and returns its
    /// slot index for later [`SparseGrad::defer_context_touch`] calls.
    /// Only meaningful in pooled mode.
    pub fn push_u_slot(&mut self, u: &[f64]) -> u32 {
        debug_assert!(self.pooled, "push_u_slot outside a pooled batch");
        debug_assert_eq!(u.len(), self.u_dim, "u row width vs pooled dim");
        let slot = (self.u_slots.len() / self.u_dim.max(1)) as u32;
        self.u_slots.extend_from_slice(u);
        slot
    }

    /// Defers `context[row] += alpha · u_slots[slot]` and
    /// `bias[row] += alpha` until the flush. Only meaningful in pooled
    /// mode.
    pub fn defer_context_touch(&mut self, row: usize, alpha: f64, slot: u32) {
        debug_assert!(self.pooled, "defer_context_touch outside a pooled batch");
        debug_assert!(row < (1usize << 32), "row must fit the packed sort key");
        debug_assert!(self.pending.len() < u32::MAX as usize, "seq overflow");
        self.pending.push(DeferredTouch {
            key: ((row as u64) << 32) | self.pending.len() as u64,
            coef: alpha,
            slot,
        });
    }

    /// Applies every deferred touch of the current pooled batch and leaves
    /// pooled mode. Records are sorted by their packed `(row, seq)` key —
    /// `seq` is unique, so the unstable sort is a stable sort by row — and
    /// each row's touches are applied contiguously in their original
    /// accumulation order. One map entry per distinct row (for both the
    /// context row and the bias entry) replaces one per touch, and the
    /// grouped walk keeps the gradient row hot in cache while the pooled
    /// `u` copies stream past it. Bit-identical to immediate accumulation
    /// because per-row floating-point order is exactly preserved.
    pub fn flush_pooled_batch(&mut self) {
        let Self {
            context,
            bias,
            pool,
            pending,
            u_slots,
            u_dim,
            pooled,
            ..
        } = self;
        *pooled = false;
        pending.sort_unstable_by_key(|t| t.key);
        let dim = *u_dim;
        let mut i = 0;
        while i < pending.len() {
            let row = (pending[i].key >> 32) as usize;
            let e = context
                .entry(row)
                .or_insert_with(|| pooled_zeroed(pool, dim));
            let b = bias.entry(row).or_insert(0.0);
            while i < pending.len() && (pending[i].key >> 32) as usize == row {
                let t = pending[i];
                let u = &u_slots[t.slot as usize * dim..(t.slot as usize + 1) * dim];
                ops::axpy_unchecked(t.coef, u, e);
                *b += t.coef;
                i += 1;
            }
        }
        pending.clear();
        u_slots.clear();
    }

    /// Merges another sparse gradient: `self += other`.
    pub fn merge(&mut self, other: &SparseGrad) {
        for (&r, v) in &other.embedding {
            self.add_embedding_row(r, 1.0, v);
        }
        for (&r, v) in &other.context {
            self.add_context_row(r, 1.0, v);
        }
        for (&r, &b) in &other.bias {
            self.add_bias(r, b);
        }
    }

    /// Scales every stored value by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.embedding.values_mut() {
            ops::scale(alpha, v);
        }
        for v in self.context.values_mut() {
            ops::scale(alpha, v);
        }
        for b in self.bias.values_mut() {
            *b *= alpha;
        }
    }

    /// Per-tensor ℓ2 norms `(‖gW‖, ‖gW′‖, ‖gB′‖)`.
    pub fn tensor_norms(&self) -> (f64, f64, f64) {
        let e = self
            .embedding
            .values()
            .map(|v| ops::l2_norm_sq(v))
            .sum::<f64>()
            .sqrt();
        let c = self
            .context
            .values()
            .map(|v| ops::l2_norm_sq(v))
            .sum::<f64>()
            .sqrt();
        let b = self.bias.values().map(|x| x * x).sum::<f64>().sqrt();
        (e, c, b)
    }

    /// ℓ2 norm of the whole flattened gradient.
    pub fn global_norm(&self) -> f64 {
        let (e, c, b) = self.tensor_norms();
        (e * e + c * c + b * b).sqrt()
    }

    /// Scales the three tensors independently by the given factors
    /// (per-layer clipping applies different factors per tensor).
    pub fn scale_per_tensor(&mut self, fe: f64, fc: f64, fb: f64) {
        for v in self.embedding.values_mut() {
            ops::scale(fe, v);
        }
        for v in self.context.values_mut() {
            ops::scale(fc, v);
        }
        for b in self.bias.values_mut() {
            *b *= fb;
        }
    }

    /// `true` iff all stored values are finite.
    pub fn all_finite(&self) -> bool {
        self.embedding.values().all(|v| ops::all_finite(v))
            && self.context.values().all(|v| ops::all_finite(v))
            && self.bias.values().all(|b| b.is_finite())
    }

    /// Applies `params += alpha * self` to any parameter view — a dense
    /// [`ModelParams`] or a copy-on-write overlay.
    ///
    /// # Errors
    /// Returns [`ModelError::TokenOutOfRange`] if a stored row exceeds the
    /// parameter shape, or [`ModelError::ShapeMismatch`] on a row-width
    /// mismatch.
    pub fn apply_to<P: ParamsViewMut + ?Sized>(
        &self,
        params: &mut P,
        alpha: f64,
    ) -> Result<(), ModelError> {
        let vocab = params.vocab_size();
        let dim = params.dim();
        for (&r, v) in &self.embedding {
            if r >= vocab {
                return Err(ModelError::TokenOutOfRange { token: r, vocab });
            }
            if v.len() != dim {
                return Err(ModelError::ShapeMismatch {
                    what: "embedding row width",
                });
            }
            ops::axpy(alpha, v, params.embedding_row_mut(r))?;
        }
        for (&r, v) in &self.context {
            if r >= vocab {
                return Err(ModelError::TokenOutOfRange { token: r, vocab });
            }
            if v.len() != dim {
                return Err(ModelError::ShapeMismatch {
                    what: "context row width",
                });
            }
            ops::axpy(alpha, v, params.context_row_mut(r))?;
        }
        for (&r, &b) in &self.bias {
            if r >= vocab {
                return Err(ModelError::TokenOutOfRange { token: r, vocab });
            }
            *params.bias_at_mut(r) += alpha * b;
        }
        Ok(())
    }

    /// Accumulates into a dense parameter-shaped buffer: `dense += self`.
    ///
    /// # Errors
    /// Same shape requirements as [`SparseGrad::apply_to`].
    pub fn accumulate_into(&self, dense: &mut ModelParams) -> Result<(), ModelError> {
        self.apply_to(dense, 1.0)
    }

    /// Builds the sparse delta `after − before` restricted to `touched`
    /// embedding/context rows and bias entries.
    ///
    /// The caller supplies the touched row sets it tracked during local
    /// training; rows outside the sets are equal by construction.
    pub fn from_delta(
        before: &ModelParams,
        after: &ModelParams,
        touched_embedding: impl IntoIterator<Item = usize>,
        touched_context: impl IntoIterator<Item = usize>,
        touched_bias: impl IntoIterator<Item = usize>,
    ) -> SparseGrad {
        let mut g = SparseGrad::new();
        for r in touched_embedding {
            let mut d = vec![0.0; after.dim()];
            ops::sub_into(after.embedding.row(r), before.embedding.row(r), &mut d)
                .expect("before/after rows share the model dim");
            if d.iter().any(|&x| x != 0.0) {
                g.embedding.insert(r, d);
            }
        }
        for r in touched_context {
            let mut d = vec![0.0; after.dim()];
            ops::sub_into(after.context.row(r), before.context.row(r), &mut d)
                .expect("before/after rows share the model dim");
            if d.iter().any(|&x| x != 0.0) {
                g.context.insert(r, d);
            }
        }
        for r in touched_bias {
            let d = after.bias[r] - before.bias[r];
            if d != 0.0 {
                g.bias.insert(r, d);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_norms() {
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[3.0, 0.0]);
        g.add_embedding_row(0, 1.0, &[0.0, 4.0]);
        g.add_context_row(2, 2.0, &[1.0, 1.0]);
        g.add_bias(1, -2.0);
        let (e, c, b) = g.tensor_norms();
        assert!((e - 5.0).abs() < 1e-12);
        assert!((c - (8.0f64).sqrt()).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((g.global_norm() - (25.0 + 8.0 + 4.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(g.touched_rows(), 3);
        assert!(!g.is_empty());
        assert!(g.all_finite());
    }

    #[test]
    fn merge_and_scale() {
        let mut a = SparseGrad::new();
        a.add_embedding_row(0, 1.0, &[1.0]);
        let mut b = SparseGrad::new();
        b.add_embedding_row(0, 1.0, &[2.0]);
        b.add_bias(3, 1.0);
        a.merge(&b);
        assert_eq!(a.embedding[&0], vec![3.0]);
        assert_eq!(a.bias[&3], 1.0);
        a.scale(0.5);
        assert_eq!(a.embedding[&0], vec![1.5]);
        assert_eq!(a.bias[&3], 0.5);
        a.scale_per_tensor(2.0, 1.0, 4.0);
        assert_eq!(a.embedding[&0], vec![3.0]);
        assert_eq!(a.bias[&3], 2.0);
    }

    #[test]
    fn apply_to_params() {
        let mut p = ModelParams::zeros(4, 2);
        let mut g = SparseGrad::new();
        g.add_embedding_row(1, 1.0, &[1.0, 2.0]);
        g.add_context_row(3, 1.0, &[-1.0, 0.5]);
        g.add_bias(0, 7.0);
        g.apply_to(&mut p, 2.0).unwrap();
        assert_eq!(p.embedding.row(1), &[2.0, 4.0]);
        assert_eq!(p.context.row(3), &[-2.0, 1.0]);
        assert_eq!(p.bias[0], 14.0);
    }

    #[test]
    fn apply_rejects_bad_shapes() {
        let mut p = ModelParams::zeros(2, 2);
        let mut g = SparseGrad::new();
        g.add_embedding_row(5, 1.0, &[1.0, 1.0]);
        assert!(matches!(
            g.apply_to(&mut p, 1.0),
            Err(ModelError::TokenOutOfRange { .. })
        ));
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[1.0, 1.0, 1.0]);
        assert!(matches!(
            g.apply_to(&mut p, 1.0),
            Err(ModelError::ShapeMismatch { .. })
        ));
        let mut g = SparseGrad::new();
        g.add_bias(9, 1.0);
        assert!(g.apply_to(&mut p, 1.0).is_err());
    }

    #[test]
    fn from_delta_captures_only_changes() {
        let before = ModelParams::zeros(3, 2);
        let mut after = before.clone();
        after.embedding.set(1, 0, 0.5);
        after.bias[2] = -1.0;
        let g = SparseGrad::from_delta(&before, &after, [0, 1], [0], [2]);
        assert_eq!(g.embedding.len(), 1, "unchanged touched rows are dropped");
        assert_eq!(g.embedding[&1], vec![0.5, 0.0]);
        assert!(g.context.is_empty());
        assert_eq!(g.bias[&2], -1.0);
        // Applying the delta to `before` reproduces `after`.
        let mut rebuilt = before.clone();
        g.apply_to(&mut rebuilt, 1.0).unwrap();
        assert_eq!(rebuilt, after);
    }

    #[test]
    fn finiteness_detection() {
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[1.0]);
        assert!(g.all_finite());
        g.add_bias(0, f64::INFINITY);
        assert!(!g.all_finite());
    }

    #[test]
    fn recycle_pools_rows_for_reuse() {
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[1.0, 2.0]);
        g.add_context_row(1, 1.0, &[3.0, 4.0]);
        g.add_bias(2, 5.0);
        g.recycle();
        assert!(g.is_empty());
        assert_eq!(g.pool_len(), 2);
        g.add_embedding_row(7, 1.0, &[9.0, 8.0]);
        assert_eq!(g.pool_len(), 1, "row buffer came from the pool");
        assert_eq!(g.embedding[&7], vec![9.0, 8.0], "pooled rows are zeroed");
    }

    #[test]
    fn pooled_flush_is_bit_identical_to_immediate_accumulation() {
        // Interleaved touches across rows, duplicate rows within and across
        // "pairs", and awkward magnitudes: the flushed pooled gradient must
        // match immediate accumulation bit for bit because each row's
        // floating-point accumulation order is preserved exactly.
        let dim = 5;
        let u_rows: Vec<Vec<f64>> = (0..4)
            .map(|s| (0..dim).map(|d| 0.1 * (s * dim + d) as f64 - 0.7).collect())
            .collect();
        // (u-slot, row, coef) in issue order, rows deliberately out of order
        // and repeated.
        let touches = [
            (0usize, 7usize, 0.25),
            (0, 2, -1.5e-3),
            (1, 7, 3.0),
            (1, 1, 0.125),
            (2, 2, 7.75e2),
            (2, 7, -0.015625),
            (3, 1, 1.0e-7),
            (3, 7, 0.5),
        ];

        let mut immediate = SparseGrad::new();
        for &(s, row, coef) in &touches {
            immediate.add_context_row(row, coef, &u_rows[s]);
            immediate.add_bias(row, coef);
        }

        let mut pooled = SparseGrad::new();
        pooled.begin_pooled_batch(dim);
        let slots: Vec<u32> = u_rows.iter().map(|u| pooled.push_u_slot(u)).collect();
        for &(s, row, coef) in &touches {
            pooled.defer_context_touch(row, coef, slots[s]);
        }
        pooled.flush_pooled_batch();
        assert!(!pooled.pooled_mode(), "flush leaves pooled mode");

        assert_eq!(immediate.context.len(), pooled.context.len());
        for (row, want) in &immediate.context {
            let got = &pooled.context[row];
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "context row {row}");
            }
        }
        assert_eq!(immediate.bias.len(), pooled.bias.len());
        for (row, want) in &immediate.bias {
            assert_eq!(pooled.bias[row].to_bits(), want.to_bits(), "bias {row}");
        }
    }

    #[test]
    fn pool_is_invisible_to_clone_and_eq() {
        let mut warm = SparseGrad::new();
        warm.add_embedding_row(0, 1.0, &[1.0]);
        warm.recycle();
        warm.add_embedding_row(0, 1.0, &[1.0]);
        let mut cold = SparseGrad::new();
        cold.add_embedding_row(0, 1.0, &[1.0]);
        assert_eq!(warm, cold, "pool state must not affect equality");
        assert_eq!(warm.clone(), warm);
        assert_eq!(warm.clone().pool_len(), 0, "clones start with a cold pool");
    }
}
