//! Per-layer gradient clipping (§4.1).
//!
//! "We employ the per-layer clipping approach of [McMahan & Andrew 2018],
//! where given an overall clipping magnitude C, each tensor is clipped to
//! C/√|θ|. In the skip-gram model θ₀ = {W, W′, B′}, hence |θ| = 3, so we
//! clip the ℓ2-norm of each tensor to C/√3." Clipping each of the three
//! tensors to C/√3 bounds the global ℓ2 norm of the concatenated update by
//! C, which is the sensitivity the Gaussian mechanism is calibrated to.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::grad::SparseGrad;
use crate::params::NUM_TENSORS;

/// What a clipping pass observed — useful for tuning C (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipReport {
    /// Per-tensor ℓ2 norms before clipping `(W, W′, B′)`.
    pub norms_before: (f64, f64, f64),
    /// The per-tensor bound `C/√3` that was enforced.
    pub per_tensor_bound: f64,
    /// Which tensors were actually scaled down.
    pub clipped: (bool, bool, bool),
}

impl ClipReport {
    /// `true` iff any tensor was clipped.
    pub fn any_clipped(&self) -> bool {
        self.clipped.0 || self.clipped.1 || self.clipped.2
    }
}

/// Clips each tensor of `grad` to ℓ2 norm at most `clip_norm / √3` in
/// place, guaranteeing a global norm of at most `clip_norm`.
///
/// # Errors
/// * [`ModelError::BadConfig`] — `clip_norm` must be finite and positive.
/// * [`ModelError::NonFinite`] — a poisoned (NaN/∞) gradient is rejected so
///   it can never enter the Gaussian sum query.
pub fn clip_per_layer(grad: &mut SparseGrad, clip_norm: f64) -> Result<ClipReport, ModelError> {
    if !(clip_norm.is_finite() && clip_norm > 0.0) {
        return Err(ModelError::BadConfig {
            name: "clip_norm",
            expected: "finite and > 0",
        });
    }
    if !grad.all_finite() {
        return Err(ModelError::NonFinite {
            at: "gradient before clipping",
        });
    }
    let bound = clip_norm / (NUM_TENSORS as f64).sqrt();
    let (ne, nc, nb) = grad.tensor_norms();
    let factor = |n: f64| if n > bound { bound / n } else { 1.0 };
    let (fe, fc, fb) = (factor(ne), factor(nc), factor(nb));
    grad.scale_per_tensor(fe, fc, fb);
    Ok(ClipReport {
        norms_before: (ne, nc, nb),
        per_tensor_bound: bound,
        clipped: (fe < 1.0, fc < 1.0, fb < 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_with_norms(e: f64, c: f64, b: f64) -> SparseGrad {
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[e]);
        g.add_context_row(0, 1.0, &[c]);
        g.add_bias(0, b);
        g
    }

    #[test]
    fn global_norm_bounded_by_c() {
        let mut g = grad_with_norms(10.0, 10.0, 10.0);
        let report = clip_per_layer(&mut g, 0.5).unwrap();
        assert!(report.any_clipped());
        assert!(g.global_norm() <= 0.5 + 1e-12);
        let bound = 0.5 / 3.0f64.sqrt();
        let (e, c, b) = g.tensor_norms();
        for n in [e, c, b] {
            assert!((n - bound).abs() < 1e-12);
        }
    }

    #[test]
    fn small_gradients_pass_untouched() {
        let mut g = grad_with_norms(0.01, 0.01, 0.01);
        let before = g.clone();
        let report = clip_per_layer(&mut g, 1.0).unwrap();
        assert!(!report.any_clipped());
        assert_eq!(g, before);
        assert_eq!(report.norms_before, (0.01, 0.01, 0.01));
    }

    #[test]
    fn tensors_clip_independently() {
        // Only the embedding tensor exceeds the bound.
        let mut g = grad_with_norms(100.0, 0.001, 0.001);
        let report = clip_per_layer(&mut g, 0.5).unwrap();
        assert_eq!(report.clipped, (true, false, false));
        let (e, c, b) = g.tensor_norms();
        assert!((e - 0.5 / 3.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(c, 0.001);
        assert_eq!(b, 0.001);
    }

    #[test]
    fn validates_clip_norm_and_rejects_nan() {
        let mut g = grad_with_norms(1.0, 1.0, 1.0);
        assert!(clip_per_layer(&mut g, 0.0).is_err());
        assert!(clip_per_layer(&mut g, f64::NAN).is_err());
        assert!(clip_per_layer(&mut g, f64::INFINITY).is_err());
        let mut bad = grad_with_norms(f64::NAN, 1.0, 1.0);
        assert!(matches!(
            clip_per_layer(&mut bad, 1.0),
            Err(ModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn empty_gradient_is_a_noop() {
        let mut g = SparseGrad::new();
        let report = clip_per_layer(&mut g, 1.0).unwrap();
        assert!(!report.any_clipped());
        assert_eq!(report.norms_before, (0.0, 0.0, 0.0));
    }
}
