//! Error types for the model layer.

use std::fmt;

use plp_linalg::LinalgError;

/// Errors produced by model construction, training steps or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration or hyper-parameter was out of domain.
    BadConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// A token index exceeded the vocabulary size.
    TokenOutOfRange {
        /// The offending token.
        token: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A gradient or parameter tensor became non-finite — training is
    /// poisoned and the step must be rejected rather than fed into the
    /// Gaussian sum query.
    NonFinite {
        /// Where the non-finite value appeared.
        at: &'static str,
    },
    /// Two models/gradients had incompatible shapes.
    ShapeMismatch {
        /// Description of the mismatch.
        what: &'static str,
    },
    /// An underlying linear-algebra error.
    Linalg(LinalgError),
    /// An I/O failure (snapshot persistence).
    Io {
        /// The rendered I/O error message.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig { name, expected } => {
                write!(f, "bad model config: {name} must be {expected}")
            }
            ModelError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} out of range for vocabulary of {vocab}")
            }
            ModelError::NonFinite { at } => write!(f, "non-finite value at {at}"),
            ModelError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            ModelError::Linalg(e) => write!(f, "linalg error: {e}"),
            ModelError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::BadConfig {
            name: "dim",
            expected: ">= 1"
        }
        .to_string()
        .contains("dim"));
        assert!(ModelError::TokenOutOfRange { token: 9, vocab: 5 }
            .to_string()
            .contains("9"));
        assert!(ModelError::NonFinite {
            at: "bucket gradient"
        }
        .to_string()
        .contains("bucket gradient"));
        let l: ModelError = LinalgError::NonFinite { op: "dot" }.into();
        assert!(l.to_string().contains("dot"));
    }
}
