//! Error types for the model layer.

use std::fmt;

use plp_linalg::LinalgError;

/// Typed decode failures for binary snapshots — the legacy PLPM/PLPE codecs
/// and the mmap-able PLPS v2 layout. Each variant names a distinct physical
/// failure so the serving-side generation watcher can report *why* a
/// candidate snapshot was rejected (instead of a catch-all shape mismatch).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The magic bytes did not match the expected format.
    BadMagic,
    /// The format version is not supported by this build.
    BadVersion {
        /// The version the file claimed.
        got: u32,
    },
    /// The file/buffer ended inside a fixed-size header region.
    TruncatedHeader {
        /// Which header region was cut short.
        what: &'static str,
    },
    /// The file/buffer ended inside a tensor body.
    TruncatedBody {
        /// Which tensor body was cut short.
        what: &'static str,
    },
    /// A CRC-32 integrity check failed.
    BadCrc {
        /// Which checksummed region failed.
        what: &'static str,
    },
    /// A claimed tensor size exceeds the shared frame ceiling — rejected
    /// before any allocation.
    OverCeiling {
        /// Which tensor made the oversized claim.
        what: &'static str,
    },
    /// Structurally parseable but semantically inconsistent: mismatched
    /// tensor shapes, unaligned body offsets, unknown tensor kinds, a
    /// generation id that contradicts the file name, and the like.
    Inconsistent {
        /// Description of the inconsistency.
        what: &'static str,
    },
}

impl SnapshotError {
    /// Stable machine-readable tag for telemetry, e.g. the watcher's
    /// `serve_generation_rejected` events.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::BadVersion { .. } => "bad_version",
            SnapshotError::TruncatedHeader { .. } => "truncated_header",
            SnapshotError::TruncatedBody { .. } => "truncated_body",
            SnapshotError::BadCrc { .. } => "bad_crc",
            SnapshotError::OverCeiling { .. } => "over_ceiling",
            SnapshotError::Inconsistent { .. } => "inconsistent",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => f.write_str("bad snapshot magic"),
            SnapshotError::BadVersion { got } => {
                write!(f, "unsupported snapshot version {got}")
            }
            SnapshotError::TruncatedHeader { what } => {
                write!(f, "snapshot truncated in header ({what})")
            }
            SnapshotError::TruncatedBody { what } => {
                write!(f, "snapshot truncated in body ({what})")
            }
            SnapshotError::BadCrc { what } => write!(f, "snapshot CRC mismatch ({what})"),
            SnapshotError::OverCeiling { what } => {
                write!(f, "snapshot claims over-ceiling tensor ({what})")
            }
            SnapshotError::Inconsistent { what } => {
                write!(f, "inconsistent snapshot ({what})")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Errors produced by model construction, training steps or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration or hyper-parameter was out of domain.
    BadConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// A token index exceeded the vocabulary size.
    TokenOutOfRange {
        /// The offending token.
        token: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A gradient or parameter tensor became non-finite — training is
    /// poisoned and the step must be rejected rather than fed into the
    /// Gaussian sum query.
    NonFinite {
        /// Where the non-finite value appeared.
        at: &'static str,
    },
    /// Two models/gradients had incompatible shapes.
    ShapeMismatch {
        /// Description of the mismatch.
        what: &'static str,
    },
    /// An underlying linear-algebra error.
    Linalg(LinalgError),
    /// A malformed or corrupt binary snapshot.
    Snapshot(SnapshotError),
    /// An I/O failure (snapshot persistence).
    Io {
        /// The rendered I/O error message.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig { name, expected } => {
                write!(f, "bad model config: {name} must be {expected}")
            }
            ModelError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} out of range for vocabulary of {vocab}")
            }
            ModelError::NonFinite { at } => write!(f, "non-finite value at {at}"),
            ModelError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            ModelError::Linalg(e) => write!(f, "linalg error: {e}"),
            ModelError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ModelError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

impl From<SnapshotError> for ModelError {
    fn from(e: SnapshotError) -> Self {
        ModelError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::BadConfig {
            name: "dim",
            expected: ">= 1"
        }
        .to_string()
        .contains("dim"));
        assert!(ModelError::TokenOutOfRange { token: 9, vocab: 5 }
            .to_string()
            .contains("9"));
        assert!(ModelError::NonFinite {
            at: "bucket gradient"
        }
        .to_string()
        .contains("bucket gradient"));
        let l: ModelError = LinalgError::NonFinite { op: "dot" }.into();
        assert!(l.to_string().contains("dot"));
    }

    #[test]
    fn snapshot_error_display_and_kinds() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (SnapshotError::BadMagic, "bad_magic"),
            (SnapshotError::BadVersion { got: 9 }, "bad_version"),
            (
                SnapshotError::TruncatedHeader { what: "header" },
                "truncated_header",
            ),
            (
                SnapshotError::TruncatedBody { what: "embedding" },
                "truncated_body",
            ),
            (
                SnapshotError::BadCrc {
                    what: "tensor body",
                },
                "bad_crc",
            ),
            (
                SnapshotError::OverCeiling { what: "matrix" },
                "over_ceiling",
            ),
            (
                SnapshotError::Inconsistent { what: "shapes" },
                "inconsistent",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
            let wrapped: ModelError = err.clone().into();
            assert!(wrapped.to_string().contains("snapshot error"));
            assert_eq!(wrapped, ModelError::Snapshot(err));
        }
    }
}
