//! Model utilisation (§3.3): turning the trained embedding matrix into
//! next-location recommendations.
//!
//! "For each location check-in lᵢ ∈ ζ, the embedding vectors w(lᵢ) are
//! extracted … the average of elements across dimensions of the stacked
//! vectors is computed to produce a representation F(ζ) of the recent
//! check-ins of the user. Finally, cosine similarity scores are computed as
//! the dot-product of the vector F(ζ) to the embedding vector of each
//! location … We rank all locations by their scores and select the top-K
//! locations as the potential recommendations."

use plp_linalg::ivf::{IvfBuildParams, IvfIndex, IvfQuant, IvfScratch, QuantRerankStats};
use plp_linalg::matrix::matmul_block_into;
use plp_linalg::topk::TopKScratch;
use plp_linalg::{ops, topk, Matrix};

use crate::error::ModelError;
use crate::params::ModelParams;

/// Reusable buffers for the sequential recommendation path: the profile
/// `F(ζ)`, the dense score vector, and top-k selection storage. Buffers
/// grow on first use and are retained, so steady-state calls through
/// [`Recommender::recommend_excluding_into`] are allocation-free.
#[derive(Debug, Default)]
pub struct RecommendScratch {
    profile: Vec<f64>,
    scores: Vec<f64>,
    topk: TopKScratch,
    ranked: Vec<(usize, f64)>,
    ivf: IvfScratch,
}

impl RecommendScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        RecommendScratch::default()
    }
}

/// A deployed recommender: the unit-normalised embedding matrix (the only
/// tensor shipped to devices — §3.3 footnote 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Recommender {
    embedding: Matrix,
}

impl Recommender {
    /// Builds a recommender from trained parameters (normalises rows; dot
    /// product thereafter equals cosine similarity).
    pub fn new(params: &ModelParams) -> Self {
        Recommender {
            embedding: params.deployable_embedding(),
        }
    }

    /// Builds a recommender from a raw embedding matrix (rows are
    /// normalised).
    ///
    /// # Errors
    /// Rejects non-finite embeddings with [`ModelError::NonFinite`]. A NaN
    /// row would otherwise vanish silently from every result (top-k skips
    /// NaN scores), so a corrupt matrix must fail here, at load, not
    /// quietly at serve.
    pub fn from_embedding(embedding: Matrix) -> Result<Self, ModelError> {
        if !embedding.all_finite() {
            return Err(ModelError::NonFinite { at: "embedding" });
        }
        Ok(Recommender {
            embedding: embedding.normalized_rows(),
        })
    }

    /// Wraps an embedding whose rows are **already** unit-normalised —
    /// e.g. a PLPS deployment bundle written from a deployed
    /// [`Recommender::embedding`] and flagged normalised — without copying
    /// or re-normalising, so a mapped matrix stays zero-copy end to end.
    ///
    /// Contract: the caller has established finiteness (the PLPS open path
    /// does this via `validate`/CRC verification before trusting a
    /// candidate generation). Rows that are not actually unit-length would
    /// degrade ranking quality but remain deterministic; non-finite values
    /// would drop rows from top-k, which is why untrusted bytes must go
    /// through [`Recommender::from_embedding`] or PLPS validation instead.
    pub fn from_prenormalized(embedding: Matrix) -> Self {
        Recommender { embedding }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embedding.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.embedding.cols()
    }

    /// The frozen, row-normalised embedding matrix — the serving artifact.
    /// Batch scorers use it to run one matrix–matrix product over many
    /// profiles instead of a `matvec` per query.
    pub fn embedding(&self) -> &Matrix {
        &self.embedding
    }

    /// The profile `F(ζ)`: the mean of the embedding rows of the recent
    /// check-ins.
    ///
    /// # Errors
    /// `recent` must be non-empty and all tokens in range.
    pub fn profile(&self, recent: &[usize]) -> Result<Vec<f64>, ModelError> {
        let mut acc = vec![0.0; self.dim()];
        self.profile_into(recent, &mut acc)?;
        Ok(acc)
    }

    /// [`Recommender::profile`] into a caller-provided buffer of length
    /// [`Recommender::dim`], so serving workers can reuse scratch rows.
    /// The accumulation order is identical to `profile`, making the two
    /// bit-identical.
    ///
    /// # Errors
    /// `recent` must be non-empty, all tokens in range, and `out` exactly
    /// `dim` long.
    pub fn profile_into(&self, recent: &[usize], out: &mut [f64]) -> Result<(), ModelError> {
        if recent.is_empty() {
            return Err(ModelError::BadConfig {
                name: "recent",
                expected: "non-empty",
            });
        }
        if out.len() != self.dim() {
            return Err(ModelError::ShapeMismatch {
                what: "profile buffer vs embedding dim",
            });
        }
        out.fill(0.0);
        for &t in recent {
            if t >= self.vocab_size() {
                return Err(ModelError::TokenOutOfRange {
                    token: t,
                    vocab: self.vocab_size(),
                });
            }
            ops::axpy(1.0, self.embedding.row(t), out)?;
        }
        ops::scale(1.0 / recent.len() as f64, out);
        Ok(())
    }

    /// Cosine-proportional scores of every location against `profile`
    /// (rows are unit-length, so the dot product ranks identically to
    /// cosine).
    pub fn scores(&self, profile: &[f64]) -> Result<Vec<f64>, ModelError> {
        if profile.len() != self.dim() {
            return Err(ModelError::ShapeMismatch {
                what: "profile vs embedding dim",
            });
        }
        Ok(self.embedding.matvec(profile)?)
    }

    /// [`Recommender::scores`] into a caller-provided buffer of length
    /// [`Recommender::vocab_size`]. Runs the same blocked micro-kernel as
    /// `Matrix::matvec` (both route every inner product through the fixed
    /// eight-lane reduction), so the two paths are bit-identical.
    ///
    /// # Errors
    /// `profile` must be `dim` long and `out` `vocab_size` long.
    pub fn scores_into(&self, profile: &[f64], out: &mut [f64]) -> Result<(), ModelError> {
        if profile.len() != self.dim() {
            return Err(ModelError::ShapeMismatch {
                what: "profile vs embedding dim",
            });
        }
        if out.len() != self.vocab_size() {
            return Err(ModelError::ShapeMismatch {
                what: "score buffer vs vocab size",
            });
        }
        matmul_block_into(profile, 1, self.dim(), &self.embedding, out)?;
        Ok(())
    }

    /// Top-`k` recommended locations for the recent check-ins `ζ`.
    ///
    /// # Errors
    /// Propagates profile errors.
    pub fn recommend(&self, recent: &[usize], k: usize) -> Result<Vec<usize>, ModelError> {
        let mut scratch = RecommendScratch::new();
        self.recommend_excluding_into(recent, k, &[], &mut scratch)
    }

    /// Top-`k` recommendations excluding the given locations (e.g. the ones
    /// just visited).
    ///
    /// Excluded locations are marked `NaN` — the selection's explicit
    /// "unrankable" sentinel — not `-∞`: an infinite score is still a
    /// *score* (and ranks accordingly), whereas an excluded location must
    /// never appear no matter how large `k` is. Out-of-range exclusions
    /// are ignored.
    ///
    /// # Errors
    /// Propagates profile errors.
    pub fn recommend_excluding(
        &self,
        recent: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<usize>, ModelError> {
        let mut scratch = RecommendScratch::new();
        self.recommend_excluding_into(recent, k, exclude, &mut scratch)
    }

    /// [`Recommender::recommend_excluding`] with caller-owned scratch:
    /// profile, score and selection buffers are reused across calls, so
    /// repeated queries (the leave-one-out evaluation loop, serving
    /// workers) stay allocation-free in steady state. Results are
    /// bit-identical to the allocating wrappers, which route through this
    /// method.
    ///
    /// # Errors
    /// Propagates profile errors.
    pub fn recommend_excluding_into(
        &self,
        recent: &[usize],
        k: usize,
        exclude: &[usize],
        scratch: &mut RecommendScratch,
    ) -> Result<Vec<usize>, ModelError> {
        scratch.profile.resize(self.dim(), 0.0);
        self.profile_into(recent, &mut scratch.profile)?;
        scratch.scores.resize(self.vocab_size(), 0.0);
        self.scores_into(&scratch.profile, &mut scratch.scores)?;
        mask_excluded(&mut scratch.scores, exclude);
        topk::top_k_with_scores_into(&scratch.scores, k, &mut scratch.topk, &mut scratch.ranked);
        Ok(scratch.ranked.iter().map(|&(i, _)| i).collect())
    }

    /// Builds an IVF coarse-quantiser index over this recommender's frozen
    /// embedding rows, for use with
    /// [`Recommender::recommend_indexed_into`]. The index is bit-identical
    /// across build thread counts (see `plp_linalg::ivf`).
    ///
    /// # Errors
    /// Propagates `InvalidArgument` for bad params (e.g. more cells than
    /// locations).
    pub fn build_index(&self, params: &IvfBuildParams) -> Result<IvfIndex, ModelError> {
        Ok(IvfIndex::build(&self.embedding, params)?)
    }

    /// Approximate top-`k` via an IVF index built by
    /// [`Recommender::build_index`]: probes the `nprobe` best cells and
    /// re-scores their members with the exact cosine kernel, so every
    /// returned location carries the same score the exhaustive path would
    /// compute and exclusion keeps the NaN-sentinel semantics. With
    /// `nprobe >= index.cells()` the result equals
    /// [`Recommender::recommend_excluding_into`] exactly.
    ///
    /// # Errors
    /// Propagates profile errors and index shape mismatches (an index built
    /// over a different embedding is rejected).
    pub fn recommend_indexed_into(
        &self,
        index: &IvfIndex,
        recent: &[usize],
        k: usize,
        exclude: &[usize],
        nprobe: usize,
        scratch: &mut RecommendScratch,
    ) -> Result<Vec<usize>, ModelError> {
        scratch.profile.resize(self.dim(), 0.0);
        self.profile_into(recent, &mut scratch.profile)?;
        index.search_into(
            &self.embedding,
            &scratch.profile,
            k,
            nprobe,
            exclude,
            &mut scratch.ivf,
            &mut scratch.ranked,
        )?;
        Ok(scratch.ranked.iter().map(|&(i, _)| i).collect())
    }

    /// Packs this recommender's embedding rows into the int8 coarse-scoring
    /// layout for `index`, for use with
    /// [`Recommender::recommend_indexed_quantized_into`]. Deterministic:
    /// the packed bytes are a pure function of the embedding and the index.
    ///
    /// # Errors
    /// Propagates shape mismatches (an index built over a different
    /// embedding is rejected).
    pub fn build_quantized(&self, index: &IvfIndex) -> Result<IvfQuant, ModelError> {
        Ok(IvfQuant::build(&self.embedding, index)?)
    }

    /// [`Recommender::recommend_indexed_into`] through the int8 coarse
    /// pass: probed members are scored in i32 first and only the
    /// error-bounded shortlist is re-scored with the exact cosine kernel.
    /// For any `nprobe` the result is bit-identical to the unquantized
    /// indexed path, and with `nprobe >= index.cells()` it equals
    /// [`Recommender::recommend_excluding_into`] exactly.
    ///
    /// # Errors
    /// Propagates profile errors and index/quant shape mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_indexed_quantized_into(
        &self,
        index: &IvfIndex,
        quant: &IvfQuant,
        recent: &[usize],
        k: usize,
        exclude: &[usize],
        nprobe: usize,
        overfetch: usize,
        scratch: &mut RecommendScratch,
    ) -> Result<(Vec<usize>, QuantRerankStats), ModelError> {
        scratch.profile.resize(self.dim(), 0.0);
        self.profile_into(recent, &mut scratch.profile)?;
        let stats = index.search_quantized_into(
            quant,
            &self.embedding,
            &scratch.profile,
            k,
            nprobe,
            overfetch,
            exclude,
            &mut scratch.ivf,
            &mut scratch.ranked,
        )?;
        Ok((scratch.ranked.iter().map(|&(i, _)| i).collect(), stats))
    }
}

/// Marks every in-range excluded index `NaN` so the top-k selection skips
/// it. Shared by the sequential path above and the batched serving path
/// (`plp-serve`), which must stay bit-identical.
pub fn mask_excluded(scores: &mut [f64], exclude: &[usize]) {
    for &e in exclude {
        if e < scores.len() {
            scores[e] = f64::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An embedding with two well-separated clusters: tokens 0–2 along +x,
    /// tokens 3–5 along +y.
    fn clustered() -> Recommender {
        let mut m = Matrix::zeros(6, 2);
        for t in 0..3 {
            m.set(t, 0, 1.0);
            m.set(t, 1, 0.05 * t as f64);
        }
        for t in 3..6 {
            m.set(t, 1, 1.0);
            m.set(t, 0, 0.05 * (t - 3) as f64);
        }
        Recommender::from_embedding(m).unwrap()
    }

    #[test]
    fn recommends_within_cluster() {
        let r = clustered();
        let top = r.recommend(&[0, 1], 3).unwrap();
        assert!(
            top.contains(&0) && top.contains(&1) && top.contains(&2),
            "{top:?}"
        );
        let top_y = r.recommend(&[3, 4], 3).unwrap();
        assert!(top_y.contains(&5), "{top_y:?}");
    }

    #[test]
    fn profile_is_mean_of_rows() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let r = Recommender::from_embedding(m).unwrap();
        let p = r.profile(&[0, 1]).unwrap();
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn excluding_removes_visited() {
        let r = clustered();
        let top = r.recommend_excluding(&[0, 1], 2, &[0, 1]).unwrap();
        assert!(!top.contains(&0) && !top.contains(&1));
        assert!(top.contains(&2));
        // Out-of-range exclusions are ignored.
        let same = r.recommend_excluding(&[0, 1], 2, &[999]).unwrap();
        assert_eq!(same, r.recommend(&[0, 1], 2).unwrap());
    }

    #[test]
    fn exclusion_holds_even_when_k_exceeds_candidates() {
        // Regression: exclusion must behave as removal, not as a -∞ score
        // that a large k could still dredge up.
        let r = clustered();
        let top = r.recommend_excluding(&[0, 1], 6, &[0, 1]).unwrap();
        assert_eq!(top.len(), 4, "6 locations minus 2 excluded");
        assert!(!top.contains(&0) && !top.contains(&1), "{top:?}");
    }

    #[test]
    fn profile_into_matches_profile_and_validates() {
        let r = clustered();
        let p = r.profile(&[0, 3, 4]).unwrap();
        let mut buf = vec![7.0; r.dim()];
        r.profile_into(&[0, 3, 4], &mut buf).unwrap();
        assert_eq!(p, buf, "shared path must be bit-identical");
        let mut wrong = vec![0.0; r.dim() + 1];
        assert!(r.profile_into(&[0], &mut wrong).is_err());
        assert!(r.profile_into(&[], &mut buf).is_err());
        assert!(r.profile_into(&[99], &mut buf).is_err());
    }

    #[test]
    fn mask_excluded_marks_nan_and_ignores_out_of_range() {
        let mut s = vec![0.1, 0.2, 0.3];
        mask_excluded(&mut s, &[1, 9]);
        assert!(s[1].is_nan());
        assert_eq!(s[0], 0.1);
        assert_eq!(s[2], 0.3);
    }

    #[test]
    fn validates_inputs() {
        let r = clustered();
        assert!(r.profile(&[]).is_err());
        assert!(r.profile(&[99]).is_err());
        assert!(r.scores(&[1.0]).is_err());
        assert_eq!(r.vocab_size(), 6);
        assert_eq!(r.dim(), 2);
    }

    #[test]
    fn from_embedding_rejects_non_finite() {
        let mut m = Matrix::zeros(3, 2);
        m.set(1, 0, f64::NAN);
        assert!(matches!(
            Recommender::from_embedding(m),
            Err(ModelError::NonFinite { .. })
        ));
        let mut inf = Matrix::zeros(3, 2);
        inf.set(2, 1, f64::INFINITY);
        assert!(Recommender::from_embedding(inf).is_err());
    }

    #[test]
    fn indexed_full_probe_matches_exhaustive_recommendations() {
        let r = clustered();
        let index = r
            .build_index(&IvfBuildParams {
                cells: 2,
                ..Default::default()
            })
            .unwrap();
        let mut scratch = RecommendScratch::new();
        for (recent, exclude) in [
            (vec![0usize, 1], vec![]),
            (vec![3, 4], vec![3usize, 4]),
            (vec![0, 5], vec![999]),
        ] {
            let dense = r
                .recommend_excluding_into(&recent, 4, &exclude, &mut scratch)
                .unwrap();
            let indexed = r
                .recommend_indexed_into(&index, &recent, 4, &exclude, index.cells(), &mut scratch)
                .unwrap();
            assert_eq!(indexed, dense, "full probe must equal exhaustive");
        }
    }

    #[test]
    fn quantized_indexed_full_probe_matches_exhaustive_recommendations() {
        let r = clustered();
        let index = r
            .build_index(&IvfBuildParams {
                cells: 2,
                ..Default::default()
            })
            .unwrap();
        let quant = r.build_quantized(&index).unwrap();
        let mut scratch = RecommendScratch::new();
        for (recent, exclude) in [
            (vec![0usize, 1], vec![]),
            (vec![3, 4], vec![3usize, 4]),
            (vec![0, 5], vec![999]),
        ] {
            let dense = r
                .recommend_excluding_into(&recent, 4, &exclude, &mut scratch)
                .unwrap();
            let (quantized, stats) = r
                .recommend_indexed_quantized_into(
                    &index,
                    &quant,
                    &recent,
                    4,
                    &exclude,
                    index.cells(),
                    2,
                    &mut scratch,
                )
                .unwrap();
            assert_eq!(
                quantized, dense,
                "quantized full probe must equal exhaustive"
            );
            assert!(stats.shortlisted <= stats.candidates);
        }
        // A quant pack from a different index shape is rejected.
        let other = Recommender::from_embedding(Matrix::zeros(4, 2)).unwrap();
        let foreign_index = other
            .build_index(&IvfBuildParams {
                cells: 2,
                ..Default::default()
            })
            .unwrap();
        let foreign = other.build_quantized(&foreign_index).unwrap();
        assert!(r
            .recommend_indexed_quantized_into(&index, &foreign, &[0], 2, &[], 1, 2, &mut scratch)
            .is_err());
    }

    #[test]
    fn indexed_narrow_probe_stays_in_cluster() {
        let r = clustered();
        let index = r
            .build_index(&IvfBuildParams {
                cells: 2,
                ..Default::default()
            })
            .unwrap();
        let mut scratch = RecommendScratch::new();
        let top = r
            .recommend_indexed_into(&index, &[0, 1], 2, &[], 1, &mut scratch)
            .unwrap();
        assert!(top.iter().all(|&t| t < 3), "x-cluster only: {top:?}");
    }

    #[test]
    fn indexed_path_rejects_foreign_index() {
        let r = clustered();
        let other = Recommender::from_embedding(Matrix::zeros(4, 2)).unwrap();
        let index = other
            .build_index(&IvfBuildParams {
                cells: 2,
                ..Default::default()
            })
            .unwrap();
        let mut scratch = RecommendScratch::new();
        assert!(r
            .recommend_indexed_into(&index, &[0], 2, &[], 1, &mut scratch)
            .is_err());
    }

    #[test]
    fn new_normalises_the_params_embedding() {
        let mut params = ModelParams::zeros(2, 2);
        params.embedding.set(0, 0, 10.0);
        params.embedding.set(1, 0, 0.1);
        let r = Recommender::new(&params);
        // Both rows now unit length: scores against x-axis both 1.
        let s = r.scores(&[1.0, 0.0]).unwrap();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
    }
}
