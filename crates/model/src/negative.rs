//! Negative samplers.
//!
//! The private path uses [`NegativeSampler::Uniform`]: "we use a sampled
//! softmax function with a uniform sampling distribution. This is a
//! necessity for preserving privacy, since estimating the frequency
//! distribution of locations from user-submitted data will cause privacy
//! leakage" (§3.2). The classic word2vec unigram^(3/4) sampler is provided
//! for *non-private* ablations only.

use rand::{Rng, RngExt};

use plp_linalg::sample::{sample_distinct_excluding, sample_distinct_excluding_into};

use crate::error::ModelError;

/// Strategy for drawing negative examples.
#[derive(Debug, Clone, PartialEq)]
pub enum NegativeSampler {
    /// Uniform over the vocabulary — the only DP-safe choice.
    Uniform,
    /// Frequency-weighted (unigram^power) sampling over precomputed counts.
    /// Leaks the popularity distribution; non-private ablation only.
    Unigram {
        /// Cumulative distribution over tokens.
        cdf: Vec<f64>,
    },
}

impl NegativeSampler {
    /// Builds a unigram sampler from per-token counts raised to `power`
    /// (word2vec uses 0.75).
    ///
    /// # Errors
    /// `counts` must be non-empty with a positive total, and `power` finite
    /// and non-negative.
    pub fn unigram(counts: &[usize], power: f64) -> Result<Self, ModelError> {
        if counts.is_empty() {
            return Err(ModelError::BadConfig {
                name: "counts",
                expected: "non-empty",
            });
        }
        if !(power.is_finite() && power >= 0.0) {
            return Err(ModelError::BadConfig {
                name: "power",
                expected: "finite and >= 0",
            });
        }
        let mut cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in counts {
            acc += (c as f64).powf(power);
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(ModelError::BadConfig {
                name: "counts",
                expected: "positive total",
            });
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Ok(NegativeSampler::Unigram { cdf })
    }

    /// Draws `neg` distinct negative tokens from `0..vocab`, never equal to
    /// `exclude` (the positive context).
    ///
    /// # Errors
    /// `vocab` must be ≥ 2 so at least one negative exists.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        vocab: usize,
        neg: usize,
        exclude: usize,
    ) -> Result<Vec<usize>, ModelError> {
        let mut out = Vec::with_capacity(neg);
        self.sample_into(rng, vocab, neg, exclude, &mut out)?;
        Ok(out)
    }

    /// [`NegativeSampler::sample`] into a caller-provided buffer, cleared
    /// first; its capacity is retained, so the local-SGD inner loop reuses
    /// one candidate vector across examples without allocating in steady
    /// state. Draws the same RNG sequence as the allocating wrapper.
    ///
    /// # Errors
    /// `vocab` must be ≥ 2 so at least one negative exists.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        vocab: usize,
        neg: usize,
        exclude: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), ModelError> {
        if vocab < 2 {
            return Err(ModelError::BadConfig {
                name: "vocab",
                expected: ">= 2",
            });
        }
        match self {
            NegativeSampler::Uniform => {
                sample_distinct_excluding_into(rng, vocab, neg, exclude, out);
                Ok(())
            }
            NegativeSampler::Unigram { cdf } => {
                if cdf.len() != vocab {
                    return Err(ModelError::ShapeMismatch {
                        what: "unigram cdf vs vocab",
                    });
                }
                out.clear();
                let want = neg.min(vocab - 1);
                let mut guard = 0usize;
                while out.len() < want {
                    let u: f64 = rng.random();
                    let t = cdf.partition_point(|&c| c < u).min(vocab - 1);
                    if t != exclude && !out.contains(&t) {
                        out.push(t);
                    }
                    guard += 1;
                    if guard > 1000 * (want + 1) {
                        // Extremely concentrated distribution: fill the rest
                        // uniformly to guarantee termination.
                        let rest = sample_distinct_excluding(rng, vocab, want, exclude);
                        for t in rest {
                            if !out.contains(&t) {
                                out.push(t);
                                if out.len() == want {
                                    break;
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_contract() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = NegativeSampler::Uniform;
        for _ in 0..100 {
            let negs = s.sample(&mut rng, 50, 8, 7).unwrap();
            assert_eq!(negs.len(), 8);
            assert!(!negs.contains(&7));
            let mut d = negs.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 8);
        }
    }

    #[test]
    fn uniform_is_actually_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = NegativeSampler::Uniform;
        let vocab = 20;
        let mut counts = vec![0usize; vocab];
        for _ in 0..20_000 {
            for t in s.sample(&mut rng, vocab, 1, 0).unwrap() {
                counts[t] += 1;
            }
        }
        // Tokens 1..20 each ~ 20000/19 ≈ 1052.
        for (t, &c) in counts.iter().enumerate().skip(1) {
            assert!((800..1300).contains(&c), "token {t}: {c}");
        }
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn unigram_prefers_frequent_tokens() {
        let mut rng = StdRng::seed_from_u64(3);
        let counts = vec![1000, 10, 10, 10, 10];
        let s = NegativeSampler::unigram(&counts, 1.0).unwrap();
        let mut hits0 = 0;
        let n = 5000;
        for _ in 0..n {
            let negs = s.sample(&mut rng, 5, 1, 4).unwrap();
            if negs.contains(&0) {
                hits0 += 1;
            }
        }
        assert!(hits0 as f64 / n as f64 > 0.8, "{hits0}/{n}");
    }

    #[test]
    fn unigram_power_flattens() {
        // power = 0 makes every token equally likely regardless of counts.
        let counts = vec![1000, 1, 1, 1];
        let s = NegativeSampler::unigram(&counts, 0.0).unwrap();
        if let NegativeSampler::Unigram { cdf } = &s {
            assert!((cdf[0] - 0.25).abs() < 1e-12);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn validation_errors() {
        assert!(NegativeSampler::unigram(&[], 0.75).is_err());
        assert!(NegativeSampler::unigram(&[0, 0], 0.75).is_err());
        assert!(NegativeSampler::unigram(&[1], f64::NAN).is_err());
        let mut rng = StdRng::seed_from_u64(4);
        assert!(NegativeSampler::Uniform.sample(&mut rng, 1, 2, 0).is_err());
        let s = NegativeSampler::unigram(&[1, 1], 1.0).unwrap();
        assert!(s.sample(&mut rng, 5, 1, 0).is_err(), "cdf/vocab mismatch");
    }

    #[test]
    fn requesting_more_negatives_than_available_saturates() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = NegativeSampler::unigram(&[1, 1, 1], 1.0).unwrap();
        let negs = s.sample(&mut rng, 3, 10, 1).unwrap();
        let mut d = negs.clone();
        d.sort_unstable();
        assert_eq!(d, vec![0, 2]);
        let u = NegativeSampler::Uniform.sample(&mut rng, 3, 10, 1).unwrap();
        assert_eq!(u.len(), 2);
    }
}
