//! Length-prefixed, CRC-guarded frames over byte streams.
//!
//! Wire layout, little-endian throughout:
//!
//! ```text
//! [u32 len] [u8 kind] [payload ...] [u32 crc32(kind ‖ payload)]
//! ```
//!
//! `len` counts everything after itself (kind + payload + CRC), so a
//! reader always knows how many bytes to consume and stays aligned even
//! when a frame's *content* is garbled: a payload bit-flip fails the CRC
//! check but leaves the stream decodable, which is what lets the
//! coordinator re-request a corrupted reply instead of tearing the
//! connection down. The length ceiling and CRC polynomial are shared with
//! the dataset/snapshot codecs ([`plp_data::frame`]) — one frame
//! discipline across every byte boundary in the system.

use std::io::{ErrorKind, Read, Write};

use plp_data::frame::{checked_frame_len, crc32, MAX_FRAME_BYTES};
use plp_obs::trace::TraceContext;

/// Smallest legal `len` value: a kind byte plus the CRC footer.
const MIN_BODY: usize = 5;

/// Flag bit on the kind byte marking an optional trace-context header
/// ([`TraceContext::WIRE_BYTES`] bytes between kind and payload, covered
/// by the CRC like everything else after `len`).
///
/// Real kinds stay below this bit, so a *pre-tracing* peer that receives
/// a traced frame sees an unknown kind (`0x80 | kind`) and rejects the
/// session cleanly through its ordinary unknown-kind path — the flag
/// doubles as the wire-level version gate, backed by the explicit
/// `protocol_version` check in the Setup handshake.
pub const KIND_TRACED: u8 = 0x80;

/// One read attempt's outcome, classified by how the coordinator must
/// react.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A frame that passed its integrity checks.
    Frame {
        /// Message kind byte (flag bits stripped).
        kind: u8,
        /// Trace context carried in the frame header, if any.
        ctx: Option<TraceContext>,
        /// Message payload.
        payload: Vec<u8>,
    },
    /// A well-delimited frame whose CRC failed: the stream is still
    /// aligned, the content is garbage. Recoverable by re-request.
    Corrupt {
        /// The failed check.
        what: String,
    },
    /// End of stream — the peer closed the pipe (clean exit or crash) or
    /// the framing itself became unrecoverable (impossible length claim).
    Closed,
}

/// Encodes one frame into a standalone byte vector.
///
/// # Panics
/// Panics if the payload would exceed [`MAX_FRAME_BYTES`]; callers
/// (model snapshots, bucket lists) are bounded far below the ceiling.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    encode_frame_traced(kind, None, payload)
}

/// Encodes one frame, optionally carrying a [`TraceContext`] header
/// (marked by the [`KIND_TRACED`] flag bit on the kind byte).
///
/// # Panics
/// Panics if `kind` already has the flag bit set (real kinds live below
/// it) or the payload would exceed [`MAX_FRAME_BYTES`].
pub fn encode_frame_traced(kind: u8, ctx: Option<TraceContext>, payload: &[u8]) -> Vec<u8> {
    assert_eq!(
        kind & KIND_TRACED,
        0,
        "kind {kind:#04x} collides with the trace flag"
    );
    let ctx_len = if ctx.is_some() {
        TraceContext::WIRE_BYTES
    } else {
        0
    };
    let body = 1 + ctx_len + payload.len() + 4;
    assert!(
        checked_frame_len(body as u64).is_some(),
        "frame body of {body} bytes exceeds the {MAX_FRAME_BYTES}-byte ceiling"
    );
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(body as u32).to_le_bytes());
    match ctx {
        Some(ctx) => {
            out.push(kind | KIND_TRACED);
            out.extend_from_slice(&ctx.to_bytes());
        }
        None => out.push(kind),
    }
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one frame and flushes, so the peer never waits on a buffered
/// partial message.
///
/// # Errors
/// Propagates pipe write failures.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()
}

/// [`write_frame`] with an optional trace-context header.
///
/// # Errors
/// Propagates pipe write failures.
pub fn write_frame_traced(
    w: &mut impl Write,
    kind: u8,
    ctx: Option<TraceContext>,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&encode_frame_traced(kind, ctx, payload))?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` means the stream ended
/// before the first byte (a clean boundary), errors mean it ended inside.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame, classifying every failure mode a hostile pipe can
/// produce. Never panics and never over-allocates: a length claim beyond
/// [`MAX_FRAME_BYTES`] is rejected before any buffer is sized from it.
pub fn read_frame_event(r: &mut impl Read) -> FrameEvent {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes) {
        Ok(true) => {}
        Ok(false) | Err(_) => return FrameEvent::Closed,
    }
    let body = u32::from_le_bytes(len_bytes) as usize;
    if body < MIN_BODY || checked_frame_len(body as u64).is_none() {
        // An insane length means the stream itself is desynchronised;
        // there is no way to find the next frame boundary, so this pipe
        // is done (the coordinator responds by respawning the worker).
        return FrameEvent::Closed;
    }
    let mut frame = vec![0u8; body];
    match read_exact_or_eof(r, &mut frame) {
        Ok(true) => {}
        Ok(false) | Err(_) => return FrameEvent::Closed,
    }
    let (content, crc_bytes) = frame.split_at(body - 4);
    let claimed = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let actual = crc32(content);
    if claimed != actual {
        return FrameEvent::Corrupt {
            what: format!("crc mismatch: stored {claimed:#010x}, computed {actual:#010x}"),
        };
    }
    let flagged = content[0];
    if flagged & KIND_TRACED == 0 {
        return FrameEvent::Frame {
            kind: flagged,
            ctx: None,
            payload: content[1..].to_vec(),
        };
    }
    // Traced frame: the header must fit. The whole frame was consumed
    // either way, so a short claim is content damage (Corrupt, stream
    // still aligned), not a framing failure.
    let rest = &content[1..];
    if rest.len() < TraceContext::WIRE_BYTES {
        return FrameEvent::Corrupt {
            what: format!(
                "traced frame too short for its context header: {} bytes",
                rest.len()
            ),
        };
    }
    let (ctx_bytes, payload) = rest.split_at(TraceContext::WIRE_BYTES);
    let mut raw = [0u8; TraceContext::WIRE_BYTES];
    raw.copy_from_slice(ctx_bytes);
    FrameEvent::Frame {
        kind: flagged & !KIND_TRACED,
        ctx: Some(TraceContext::from_bytes(&raw)),
        payload: payload.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_preserves_kind_and_payload() {
        let payload = vec![7u8, 0, 255, 42];
        let bytes = encode_frame(3, &payload);
        let mut cur = Cursor::new(bytes);
        match read_frame_event(&mut cur) {
            FrameEvent::Frame {
                kind,
                ctx,
                payload: p,
            } => {
                assert_eq!(kind, 3);
                assert_eq!(ctx, None);
                assert_eq!(p, payload);
            }
            other => panic!("expected frame, got {other:?}"),
        }
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
    }

    #[test]
    fn empty_payload_frames_are_legal() {
        let bytes = encode_frame(9, &[]);
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame_event(&mut cur),
            FrameEvent::Frame {
                kind: 9,
                ctx: None,
                payload: vec![]
            }
        );
    }

    #[test]
    fn traced_frames_round_trip_context_and_payload() {
        let ctx = TraceContext {
            trace_id: 0xfeed_beef_dead_cafe,
            parent_span: 0x0123_4567_89ab_cdef,
        };
        let bytes = encode_frame_traced(2, Some(ctx), b"round");
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame_event(&mut cur),
            FrameEvent::Frame {
                kind: 2,
                ctx: Some(ctx),
                payload: b"round".to_vec()
            }
        );
        // An untraced frame from the same encoder carries no context.
        let mut cur = Cursor::new(encode_frame_traced(2, None, b"round"));
        assert!(matches!(
            read_frame_event(&mut cur),
            FrameEvent::Frame { ctx: None, .. }
        ));
    }

    #[test]
    fn traced_flag_survives_crc_and_header_damage_is_corrupt_not_closed() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span: 2,
        };
        // Build a traced frame whose length claim covers only part of
        // the context header: decodable as a frame, rejected as content.
        let bytes = encode_frame_traced(2, Some(ctx), b"");
        let mut truncated = Vec::new();
        let body = 1 + 4 + 4; // kind + 4 "context" bytes + crc
        truncated.extend_from_slice(&(body as u32).to_le_bytes());
        truncated.push(2 | KIND_TRACED);
        truncated.extend_from_slice(&bytes[5..9]);
        let crc = plp_data::frame::crc32(&truncated[4..]);
        truncated.extend_from_slice(&crc.to_le_bytes());
        truncated.extend_from_slice(&encode_frame(4, b"next"));
        let mut cur = Cursor::new(truncated);
        assert!(matches!(
            read_frame_event(&mut cur),
            FrameEvent::Corrupt { .. }
        ));
        // Stream stays aligned: the following frame decodes.
        assert!(matches!(
            read_frame_event(&mut cur),
            FrameEvent::Frame { kind: 4, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "collides with the trace flag")]
    fn encoding_a_kind_with_the_flag_bit_panics() {
        let _ = encode_frame_traced(0x81, None, b"");
    }

    #[test]
    fn payload_bitflip_is_detected_and_stream_stays_aligned() {
        let mut stream = encode_frame(1, b"first");
        let first_len = stream.len();
        stream.extend_from_slice(&encode_frame(2, b"second"));
        // Flip a payload byte of the first frame only.
        stream[6] ^= 0x10;
        let mut cur = Cursor::new(stream);
        assert!(matches!(
            read_frame_event(&mut cur),
            FrameEvent::Corrupt { .. }
        ));
        assert_eq!(cur.position() as usize, first_len, "aligned to next frame");
        // The second frame still decodes — the pipe survives the garbling.
        match read_frame_event(&mut cur) {
            FrameEvent::Frame { kind, ctx, payload } => {
                assert_eq!(kind, 2);
                assert_eq!(ctx, None);
                assert_eq!(payload, b"second");
            }
            other => panic!("expected second frame, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_insane_lengths_close_the_stream() {
        let bytes = encode_frame(1, b"payload");
        // Torn mid-frame.
        let mut cur = Cursor::new(bytes[..bytes.len() - 3].to_vec());
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
        // Torn mid-length-prefix.
        let mut cur = Cursor::new(bytes[..2].to_vec());
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
        // A length claim over the shared ceiling must not allocate.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        let mut cur = Cursor::new(huge);
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
        // A length below the minimum body is equally unrecoverable.
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&2u32.to_le_bytes());
        tiny.extend_from_slice(&[0u8; 8]);
        let mut cur = Cursor::new(tiny);
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
    }
}
