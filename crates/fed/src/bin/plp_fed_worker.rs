//! Dedicated federated worker binary.
//!
//! Speaks the `plp-fed` frame protocol on stdin/stdout and nothing else.
//! The coordinator sets `PLP_FED_WORKER=1` when spawning; running this
//! binary by hand without it prints a hint instead of blocking on a
//! protocol nobody is speaking.

fn main() {
    plp_fed::maybe_run_worker();
    eprintln!(
        "plp_fed_worker: not spawned by a coordinator (set {}=1 and speak \
         the frame protocol on stdin/stdout)",
        plp_fed::WORKER_ENV
    );
    std::process::exit(2);
}
