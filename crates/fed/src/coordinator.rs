//! The coordinator: a [`BucketExecutor`] that fans each step's buckets out
//! to worker *processes* and reduces their replies in fixed order.
//!
//! # Bit-identity argument
//!
//! The training loop around this executor (sampling, grouping, noise, the
//! server update, accounting, checkpointing) is byte-for-byte the same
//! code the single-process trainer runs — the executor seam replaces only
//! lines 7–8 of Algorithm 1. A bucket's update is a pure function of
//! `(θ_t, bucket, step_seed, global index)`, and replies are reduced
//! sorted by global index, so *where* and *when* a bucket is computed —
//! which worker, which retry, after how many respawns — cannot change the
//! aggregate's bits. The only event that changes the trained bits is a
//! *permanent* drop (retries exhausted), which reuses the trainer's
//! DP-safe skipped-bucket semantics: the bucket contributes 0 ≤ ωC to the
//! Gaussian sum (never increases sensitivity), σ is unchanged, the RDP
//! charge is unchanged, and the averaging denominator stays the fixed
//! `q·W/λ`. A dropped worker can therefore never weaken the privacy
//! guarantee — only the utility of that one step.
//!
//! # Failure handling
//!
//! Per-slot deadlines with exponential stretch, bounded retries with
//! exponential backoff, and respawn-with-fresh-incarnation are all driven
//! by the pure [`RetryPolicy`] state machine (see [`crate::retry`] for
//! the diagram). Corrupted reply frames are detected by CRC and
//! re-requested over the same pipe (framing stays aligned); dead pipes
//! respawn the worker. Stale replies — from a superseded attempt or a
//! previous incarnation — are recognised by their `(incarnation, step,
//! attempt)` keys and ignored, which also de-duplicates replayed frames.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plp_core::config::Hyperparameters;
use plp_core::faults::FaultInjector;
use plp_core::plp::{BucketExecutor, BucketUpdate};
use plp_core::CoreError;
use plp_data::grouping::Bucket;
use plp_model::params::ModelParams;
use plp_obs::trace::{derive_span_id, derive_trace_id, TraceContext, Tracer, DOMAIN_FED_ROUND};
use plp_obs::Observer;
use serde_json::json;

use crate::error::FedError;
use crate::frame::{read_frame_event, write_frame, write_frame_traced, FrameEvent};
use crate::protocol::{
    RoundReply, RoundRequest, Setup, MSG_REPLY, MSG_ROUND, MSG_SETUP, MSG_SHUTDOWN,
    PROTOCOL_VERSION,
};
use crate::retry::RetryPolicy;
use crate::worker::{TRACE_DIR_ENV, WORKER_ENV};

/// Static configuration of a coordinator.
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Worker executable. The coordinator sets [`WORKER_ENV`] when
    /// spawning, so this may be the dedicated `plp_fed_worker` binary or
    /// any binary that calls [`crate::worker::maybe_run_worker`] first.
    pub worker_program: PathBuf,
    /// Extra arguments passed to the worker program.
    pub worker_args: Vec<String>,
    /// Deadline/retry/backoff policy.
    pub retry: RetryPolicy,
}

impl FedConfig {
    /// Config spawning `workers` copies of the *current executable* as
    /// workers — the pattern for binaries that call `maybe_run_worker()`.
    ///
    /// # Errors
    /// Propagates the failure to resolve the current executable path.
    pub fn with_current_exe(workers: usize) -> std::io::Result<Self> {
        Ok(FedConfig {
            workers,
            worker_program: std::env::current_exe()?,
            worker_args: Vec::new(),
            retry: RetryPolicy::default(),
        })
    }
}

/// What a reader thread tells the coordinator about one worker's pipe.
enum WorkerEvent {
    /// A CRC-clean frame arrived.
    Frame {
        slot: usize,
        incarnation: u64,
        kind: u8,
        payload: Vec<u8>,
    },
    /// A frame failed its CRC; the pipe is still aligned.
    Corrupt { slot: usize, incarnation: u64 },
    /// The pipe closed (worker exited or was killed).
    Closed { slot: usize, incarnation: u64 },
}

struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    incarnation: u64,
}

/// A slot's in-flight round assignment.
struct Pending {
    /// `(global index, bucket)` pairs this slot owns for the step.
    assignments: Vec<(u64, Bucket)>,
    /// The attempt number the expected reply must echo.
    attempt: u64,
    /// Failures so far this round (re-requests, respawns, stragglers).
    retries: u32,
    /// When this attempt is declared a straggler.
    deadline: Instant,
}

/// Round statistics, reported through the observer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Reply re-requests after CRC failures.
    pub corrupt_frames: u64,
    /// Byte-identical duplicate replies discarded.
    pub duplicates: u64,
    /// Stale replies (superseded attempt or dead incarnation) discarded.
    pub stale: u64,
    /// Deadline expiries.
    pub stragglers: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Buckets dropped because a slot exhausted its retry budget.
    pub dropped_buckets: u64,
}

/// The multi-process executor. Workers are spawned lazily on the first
/// step and live across steps; [`Drop`] shuts them down.
pub struct FedExecutor {
    cfg: FedConfig,
    workers: Vec<Option<WorkerHandle>>,
    events_tx: Sender<WorkerEvent>,
    events_rx: Receiver<WorkerEvent>,
    /// Coordinator-wide monotone spawn counter: every (re)spawn gets a
    /// fresh incarnation, which keys worker-level fault decisions and
    /// invalidates replies from dead processes.
    next_incarnation: u64,
    /// Coordinator-wide monotone send counter: every round (re)send gets
    /// a fresh attempt, which keys reply-frame fault decisions and
    /// invalidates superseded replies.
    next_attempt: u64,
    /// The setup payload workers were spawned with, to detect drift.
    active_setup_json: Option<String>,
    /// Directory workers dump their flight recorders into, exported as
    /// [`TRACE_DIR_ENV`] at spawn. Resolved per step from the observer's
    /// tracer; deliberately *not* part of the setup drift check, so
    /// toggling tracing never tears a fleet down.
    trace_dir: Option<PathBuf>,
    /// Cumulative stats across all steps (drill assertions read these).
    pub total_stats: RoundStats,
}

impl FedExecutor {
    /// Creates an executor; no processes are spawned until the first
    /// step executes.
    ///
    /// # Errors
    /// [`CoreError::BadConfig`] if `workers` is zero.
    pub fn new(cfg: FedConfig) -> Result<Self, CoreError> {
        if cfg.workers == 0 {
            return Err(CoreError::BadConfig {
                name: "workers",
                expected: ">= 1",
            });
        }
        let (events_tx, events_rx) = channel();
        let workers = (0..cfg.workers).map(|_| None).collect();
        Ok(FedExecutor {
            cfg,
            workers,
            events_tx,
            events_rx,
            next_incarnation: 0,
            next_attempt: 0,
            active_setup_json: None,
            trace_dir: None,
            total_stats: RoundStats::default(),
        })
    }

    fn spawn_worker(&mut self, slot: usize, setup_json: &str) -> Result<(), FedError> {
        self.next_incarnation += 1;
        let incarnation = self.next_incarnation;
        let mut command = Command::new(&self.cfg.worker_program);
        command
            .args(&self.cfg.worker_args)
            .env(WORKER_ENV, "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if let Some(dir) = &self.trace_dir {
            command.env(TRACE_DIR_ENV, dir);
        }
        let mut child = command.spawn()?;
        let mut stdin = child.stdin.take().ok_or_else(|| FedError::Protocol {
            what: "spawned worker has no stdin".into(),
        })?;
        let stdout = child.stdout.take().ok_or_else(|| FedError::Protocol {
            what: "spawned worker has no stdout".into(),
        })?;

        // One reader thread per incarnation. It owns the stdout pipe and
        // feeds the shared event channel until the pipe closes; events
        // from dead incarnations are filtered out by the coordinator.
        let tx = self.events_tx.clone();
        std::thread::spawn(move || {
            let mut stdout = stdout;
            loop {
                match read_frame_event(&mut stdout) {
                    // Replies never carry trace context (the worker's
                    // spans live in its own flight recorder), so any ctx
                    // here is ignored rather than trusted.
                    FrameEvent::Frame { kind, payload, .. } => {
                        if tx
                            .send(WorkerEvent::Frame {
                                slot,
                                incarnation,
                                kind,
                                payload,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    FrameEvent::Corrupt { .. } => {
                        if tx.send(WorkerEvent::Corrupt { slot, incarnation }).is_err() {
                            return;
                        }
                    }
                    FrameEvent::Closed => {
                        let _ = tx.send(WorkerEvent::Closed { slot, incarnation });
                        return;
                    }
                }
            }
        });

        // Per-worker setup: identical hp/plan, distinct slot/incarnation.
        let setup = {
            let mut s: Setup = serde_json::from_str(setup_json).map_err(|e| FedError::Decode {
                what: format!("setup template: {e}"),
            })?;
            s.slot = slot;
            s.incarnation = incarnation;
            s
        };
        write_frame(&mut stdin, MSG_SETUP, &setup.encode()?)?;
        self.workers[slot] = Some(WorkerHandle {
            child,
            stdin,
            incarnation,
        });
        Ok(())
    }

    fn kill_worker(&mut self, slot: usize) {
        if let Some(mut h) = self.workers[slot].take() {
            let _ = h.child.kill();
            let _ = h.child.wait();
        }
    }

    /// Spawns (or re-spawns) every missing worker with the given setup;
    /// tears the fleet down first if the run configuration changed.
    fn ensure_workers(
        &mut self,
        hp: &Hyperparameters,
        faults: &FaultInjector,
    ) -> Result<(), FedError> {
        let template = Setup {
            protocol_version: PROTOCOL_VERSION,
            hp: hp.clone(),
            plan: faults.plan(),
            slot: 0,
            incarnation: 0,
        };
        let setup_json = serde_json::to_string(&template).map_err(|e| FedError::Decode {
            what: format!("setup encode: {e}"),
        })?;
        if self.active_setup_json.as_deref() != Some(setup_json.as_str()) {
            for slot in 0..self.cfg.workers {
                self.kill_worker(slot);
            }
            self.active_setup_json = Some(setup_json.clone());
        }
        for slot in 0..self.cfg.workers {
            if self.workers[slot].is_none() {
                self.spawn_worker(slot, &setup_json)?;
            }
        }
        Ok(())
    }

    /// The (tracer, round trace identity) for one step, or `None` when
    /// tracing is off. The trace id comes from the training loop's scope
    /// when one is published (parenting fed spans under the step span);
    /// standalone executors fall back to deriving it from
    /// `(step_seed, step)` — deterministic either way, so coordinator and
    /// stitcher agree on every id without a side channel.
    /// Third element: the round span's own parent (the training loop's
    /// step span, or 0 standalone).
    fn round_trace(
        &self,
        obs: &Observer,
        step: u64,
        step_seed: u64,
    ) -> Option<(Arc<Tracer>, TraceContext, u64)> {
        let tracer = obs.tracer()?;
        let (trace_id, parent) = match obs.trace_scope() {
            Some(scope) => (scope.trace_id, scope.parent_span),
            None => (derive_trace_id(step_seed, DOMAIN_FED_ROUND, step), 0),
        };
        Some((
            tracer,
            TraceContext {
                trace_id,
                parent_span: derive_span_id(trace_id, "fed_round", step),
            },
            parent,
        ))
    }

    /// Sends one round request to a slot, consuming a fresh attempt
    /// number. Pipe errors surface so the caller can route them through
    /// the retry machinery. When tracing is on, the frame carries a
    /// [`TraceContext`] whose parent is this send's `fed_send` span, so
    /// worker-side spans stitch under the exact dispatch that caused
    /// them — retries included.
    fn send_round(
        &mut self,
        slot: usize,
        step: u64,
        step_seed: u64,
        theta: &ModelParams,
        assignments: &[(u64, Bucket)],
        obs: &Observer,
    ) -> Result<u64, FedError> {
        self.next_attempt += 1;
        let attempt = self.next_attempt;
        let req = RoundRequest {
            step,
            step_seed,
            attempt,
            params: theta.clone(),
            assignments: assignments.to_vec(),
        };
        let trace = self.round_trace(obs, step, step_seed);
        let wire_ctx = trace.as_ref().map(|(_, round, _)| TraceContext {
            trace_id: round.trace_id,
            parent_span: derive_span_id(round.trace_id, "fed_send", attempt),
        });
        let send_span = trace.as_ref().zip(wire_ctx).map(|((t, round, _), ctx)| {
            t.span(
                "fed_send",
                "fed",
                round.trace_id,
                ctx.parent_span,
                round.parent_span,
            )
            .arg("slot", slot as u64)
            .arg("attempt", attempt)
        });
        let handle = self.workers[slot]
            .as_mut()
            .ok_or_else(|| FedError::Protocol {
                what: format!("send_round to empty slot {slot}"),
            })?;
        write_frame_traced(&mut handle.stdin, MSG_ROUND, wire_ctx, &req.encode())?;
        drop(send_span);
        Ok(attempt)
    }

    /// Handles one slot failure (straggler, dead pipe, poisoned frames):
    /// either re-dispatches within the retry budget — with backoff and a
    /// respawn if the process is gone — or drops the slot's buckets into
    /// the DP-safe skipped set.
    ///
    /// Returns the buckets dropped (empty when the retry was dispatched).
    #[allow(clippy::too_many_arguments)]
    fn retry_or_drop(
        &mut self,
        slot: usize,
        pending: &mut BTreeMap<usize, Pending>,
        step: u64,
        step_seed: u64,
        theta: &ModelParams,
        needs_respawn: bool,
        stats: &mut RoundStats,
        obs: &Observer,
    ) -> Result<Vec<(u64, Bucket)>, FedError> {
        let Some(mut p) = pending.remove(&slot) else {
            return Ok(Vec::new());
        };
        loop {
            if !self.cfg.retry.may_retry(p.retries) {
                // Retry budget exhausted: permanent drop. DP-safe by the
                // skipped-bucket argument (see module docs) — the step's
                // noise, RDP charge and denominator are all unchanged.
                self.kill_worker(slot);
                stats.dropped_buckets += p.assignments.len() as u64;
                obs.emit(
                    "fed_worker_dropped",
                    json!({
                        "step": step,
                        "slot": slot,
                        "buckets": p.assignments.len(),
                        "retries": p.retries,
                    }),
                );
                // A permanent drop is a fault worth a post-mortem: keep
                // the trace that led up to it.
                if let Some(tracer) = obs.tracer() {
                    tracer.dump_on_fault("fed_worker_dropped");
                }
                return Ok(p.assignments);
            }
            p.retries += 1;
            stats.respawns += u64::from(needs_respawn);
            std::thread::sleep(Duration::from_millis(
                self.cfg.retry.backoff_for(p.retries - 1),
            ));
            if needs_respawn || self.workers[slot].is_none() {
                self.kill_worker(slot);
                let setup_json =
                    self.active_setup_json
                        .clone()
                        .ok_or_else(|| FedError::Protocol {
                            what: "retry before setup".into(),
                        })?;
                self.spawn_worker(slot, &setup_json)?;
                obs.emit(
                    "fed_worker_respawned",
                    json!({ "step": step, "slot": slot, "retries": p.retries }),
                );
            }
            match self.send_round(slot, step, step_seed, theta, &p.assignments, obs) {
                Ok(attempt) => {
                    p.attempt = attempt;
                    p.deadline = Instant::now()
                        + Duration::from_millis(self.cfg.retry.deadline_for(p.retries));
                    pending.insert(slot, p);
                    return Ok(Vec::new());
                }
                Err(FedError::Io(_)) => {
                    // The replacement died before accepting the round
                    // (or the original pipe broke mid-write): loop and
                    // spend another retry on a fresh process.
                    self.kill_worker(slot);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl BucketExecutor for FedExecutor {
    fn execute_step(
        &mut self,
        theta: &ModelParams,
        buckets: &[Bucket],
        hp: &Hyperparameters,
        step_seed: u64,
        step: u64,
        faults: &FaultInjector,
        obs: &Observer,
    ) -> Result<(Vec<BucketUpdate>, usize), CoreError> {
        if buckets.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let round_span = obs.histogram("plp_fed_round_ms").start_span();

        // Resolve tracing once per round; workers spawned this round
        // inherit the dump directory so their flight recorders land next
        // to the coordinator's.
        let trace = self.round_trace(obs, step, step_seed);
        self.trace_dir = trace.as_ref().and_then(|(t, _, _)| {
            t.dump_path()
                .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        });
        let fed_span = trace.as_ref().map(|(t, round, parent)| {
            t.span(
                "fed_round",
                "fed",
                round.trace_id,
                round.parent_span,
                *parent,
            )
            .arg("step", step)
            .arg("buckets", buckets.len() as u64)
        });

        self.ensure_workers(hp, faults)?;

        // Round-robin partition by global index. The partition shape is
        // irrelevant to the result: replies are keyed and re-sorted by
        // global index before aggregation.
        let mut per_slot: Vec<Vec<(u64, Bucket)>> = vec![Vec::new(); self.cfg.workers];
        for (i, bucket) in buckets.iter().enumerate() {
            per_slot[i % self.cfg.workers].push((i as u64, bucket.clone()));
        }

        let mut stats = RoundStats::default();
        let mut pending: BTreeMap<usize, Pending> = BTreeMap::new();
        let mut updates: Vec<BucketUpdate> = Vec::with_capacity(buckets.len());
        let mut skipped = 0usize;

        for (slot, assignments) in per_slot.into_iter().enumerate() {
            if assignments.is_empty() {
                continue;
            }
            match self.send_round(slot, step, step_seed, theta, &assignments, obs) {
                Ok(attempt) => {
                    pending.insert(
                        slot,
                        Pending {
                            assignments,
                            attempt,
                            retries: 0,
                            deadline: Instant::now()
                                + Duration::from_millis(self.cfg.retry.deadline_for(0)),
                        },
                    );
                }
                Err(FedError::Io(_)) => {
                    // Worker died idle between rounds: route through the
                    // retry machinery immediately.
                    pending.insert(
                        slot,
                        Pending {
                            assignments,
                            attempt: 0,
                            retries: 0,
                            deadline: Instant::now(),
                        },
                    );
                    let dropped = self.retry_or_drop(
                        slot,
                        &mut pending,
                        step,
                        step_seed,
                        theta,
                        true,
                        &mut stats,
                        obs,
                    )?;
                    skipped += dropped.len();
                }
                Err(e) => return Err(e.into()),
            }
        }

        while !pending.is_empty() {
            // Stragglers first: any slot past its deadline is killed,
            // backed off, respawned and re-sent (or dropped).
            let now = Instant::now();
            let expired: Vec<usize> = pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&s, _)| s)
                .collect();
            let mut any_expired = false;
            for slot in expired {
                any_expired = true;
                stats.stragglers += 1;
                obs.emit("fed_straggler", json!({ "step": step, "slot": slot }));
                if let Some((t, round, _)) = &trace {
                    t.instant(
                        "fed_straggler",
                        "fed",
                        round.trace_id,
                        round.parent_span,
                        [("step", step), ("slot", slot as u64)],
                    );
                    t.dump_on_fault("fed_straggler");
                }
                self.kill_worker(slot);
                let dropped = self.retry_or_drop(
                    slot,
                    &mut pending,
                    step,
                    step_seed,
                    theta,
                    true,
                    &mut stats,
                    obs,
                )?;
                skipped += dropped.len();
            }
            if any_expired || pending.is_empty() {
                continue;
            }

            let nearest = pending
                .values()
                .map(|p| p.deadline)
                .min()
                .expect("pending is non-empty");
            let timeout = nearest.saturating_duration_since(Instant::now());
            let event = match self.events_rx.recv_timeout(timeout) {
                Ok(e) => e,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CoreError::Io {
                        message: "fed event channel disconnected".into(),
                    })
                }
            };
            match event {
                WorkerEvent::Frame {
                    slot,
                    incarnation,
                    kind,
                    payload,
                } => {
                    let live = self.workers[slot]
                        .as_ref()
                        .is_some_and(|h| h.incarnation == incarnation);
                    if !live || kind != MSG_REPLY {
                        stats.stale += 1;
                        continue;
                    }
                    let reply = match RoundReply::decode(&payload) {
                        Ok(r) => r,
                        Err(_) => {
                            // CRC-clean but undecodable: treat like a
                            // garbled frame and re-request.
                            stats.corrupt_frames += 1;
                            obs.emit(
                                "fed_corrupt_frame",
                                json!({ "step": step, "slot": slot, "kind": "undecodable" }),
                            );
                            let dropped = self.retry_or_drop(
                                slot,
                                &mut pending,
                                step,
                                step_seed,
                                theta,
                                false,
                                &mut stats,
                                obs,
                            )?;
                            skipped += dropped.len();
                            continue;
                        }
                    };
                    let Some(p) = pending.get(&slot) else {
                        // Reply for a slot already settled this round: a
                        // duplicate retransmit.
                        stats.duplicates += 1;
                        continue;
                    };
                    if reply.step != step || reply.attempt != p.attempt {
                        // A superseded attempt finally answered (e.g. a
                        // straggler that woke up after its replacement).
                        stats.stale += 1;
                        continue;
                    }
                    let p = pending.remove(&slot).expect("checked above");
                    if reply.results.len() != p.assignments.len() {
                        return Err(CoreError::Io {
                            message: format!(
                                "worker {slot} answered {} results for {} assignments",
                                reply.results.len(),
                                p.assignments.len()
                            ),
                        });
                    }
                    for (index, result) in reply.results {
                        match result {
                            Some(wire) => updates.push(wire.into_update(index as usize)),
                            None => skipped += 1,
                        }
                    }
                }
                WorkerEvent::Corrupt { slot, incarnation } => {
                    let live = self.workers[slot]
                        .as_ref()
                        .is_some_and(|h| h.incarnation == incarnation);
                    if !live {
                        stats.stale += 1;
                        continue;
                    }
                    stats.corrupt_frames += 1;
                    obs.emit(
                        "fed_corrupt_frame",
                        json!({ "step": step, "slot": slot, "kind": "crc" }),
                    );
                    // The pipe is still aligned: re-request on the same
                    // process, fresh attempt number.
                    let dropped = self.retry_or_drop(
                        slot,
                        &mut pending,
                        step,
                        step_seed,
                        theta,
                        false,
                        &mut stats,
                        obs,
                    )?;
                    skipped += dropped.len();
                }
                WorkerEvent::Closed { slot, incarnation } => {
                    let live = self.workers[slot]
                        .as_ref()
                        .is_some_and(|h| h.incarnation == incarnation);
                    if !live {
                        continue;
                    }
                    self.kill_worker(slot);
                    if pending.contains_key(&slot) {
                        let dropped = self.retry_or_drop(
                            slot,
                            &mut pending,
                            step,
                            step_seed,
                            theta,
                            true,
                            &mut stats,
                            obs,
                        )?;
                        skipped += dropped.len();
                    }
                }
            }
        }

        // Fixed reduction order: ascending global bucket index, exactly
        // like the in-process executor.
        updates.sort_by_key(|u| u.index);
        drop(fed_span);
        round_span.finish();

        obs.counter("plp_fed_rounds_total").inc();
        obs.counter("plp_fed_corrupt_frames_total")
            .add(stats.corrupt_frames);
        obs.counter("plp_fed_duplicate_replies_total")
            .add(stats.duplicates);
        obs.counter("plp_fed_stragglers_total")
            .add(stats.stragglers);
        obs.counter("plp_fed_respawns_total").add(stats.respawns);
        obs.counter("plp_fed_dropped_buckets_total")
            .add(stats.dropped_buckets);
        if stats != RoundStats::default() {
            obs.emit(
                "fed_round_recovered",
                json!({
                    "step": step,
                    "corrupt_frames": stats.corrupt_frames,
                    "duplicates": stats.duplicates,
                    "stale": stats.stale,
                    "stragglers": stats.stragglers,
                    "respawns": stats.respawns,
                    "dropped_buckets": stats.dropped_buckets,
                }),
            );
        }
        self.total_stats.corrupt_frames += stats.corrupt_frames;
        self.total_stats.duplicates += stats.duplicates;
        self.total_stats.stale += stats.stale;
        self.total_stats.stragglers += stats.stragglers;
        self.total_stats.respawns += stats.respawns;
        self.total_stats.dropped_buckets += stats.dropped_buckets;

        Ok((updates, skipped))
    }
}

impl Drop for FedExecutor {
    fn drop(&mut self) {
        // Broadcast the shutdown first so every worker winds down
        // concurrently...
        for slot in 0..self.workers.len() {
            if let Some(h) = self.workers[slot].as_mut() {
                let _ = write_frame(&mut h.stdin, MSG_SHUTDOWN, &[]);
                let _ = h.stdin.flush();
            }
        }
        // ...then grant a short grace period before the hard kill: a
        // clean exit lets the worker write its flight-recorder dump. A
        // stalled worker ignores the request and eats the full grace —
        // the deadline keeps shutdown bounded either way.
        let deadline = Instant::now() + Duration::from_millis(500);
        for slot in 0..self.workers.len() {
            if let Some(h) = self.workers[slot].as_mut() {
                while Instant::now() < deadline {
                    if matches!(h.child.try_wait(), Ok(Some(_))) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            self.kill_worker(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_is_rejected() {
        let cfg = FedConfig {
            workers: 0,
            worker_program: PathBuf::from("/does/not/matter"),
            worker_args: vec![],
            retry: RetryPolicy::default(),
        };
        assert!(matches!(
            FedExecutor::new(cfg),
            Err(CoreError::BadConfig {
                name: "workers",
                ..
            })
        ));
    }

    #[test]
    fn empty_steps_never_touch_workers() {
        // A nonexistent worker program would fail any spawn; an empty
        // bucket list must short-circuit before that.
        let cfg = FedConfig {
            workers: 2,
            worker_program: PathBuf::from("/nonexistent/worker/binary"),
            worker_args: vec![],
            retry: RetryPolicy::default(),
        };
        let mut exec = FedExecutor::new(cfg).unwrap();
        let theta = ModelParams::zeros(4, 2);
        let hp = Hyperparameters::default();
        let (updates, skipped) = exec
            .execute_step(
                &theta,
                &[],
                &hp,
                1,
                1,
                &FaultInjector::default(),
                &Observer::disabled(),
            )
            .unwrap();
        assert!(updates.is_empty());
        assert_eq!(skipped, 0);
    }
}
