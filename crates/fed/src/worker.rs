//! The worker side of the federated round protocol.
//!
//! A worker is a child process wired to the coordinator by its stdin
//! (requests) and stdout (replies). It holds no state beyond the session
//! setup: every round ships the full θ_t, so workers are *stateless
//! between rounds* — killing one loses nothing but in-flight work, which
//! the coordinator re-requests elsewhere. Combined with bucket results
//! being pure functions of `(θ, bucket, step_seed, index)`, this is what
//! makes retry and respawn invisible in the trained bits.
//!
//! The worker also *hosts* the injected worker-level faults of
//! [`plp_core::faults::FaultPlan`]: stalls (sleep before replying), exits
//! (die mid-round without replying), reply-frame corruption (flip a byte
//! after the CRC was computed) and duplicate replies. All decisions are
//! drawn from the plan shipped in the session setup, keyed exactly as the
//! coordinator expects, so drills replay identically at any worker count.

use std::io::{Read, Write};

use plp_core::faults::FaultInjector;
use plp_core::plp::BucketRunner;
use plp_obs::Observer;

use crate::frame::{encode_frame, read_frame_event, FrameEvent};
use crate::protocol::{
    RoundReply, RoundRequest, Setup, WireUpdate, MSG_REPLY, MSG_ROUND, MSG_SETUP, MSG_SHUTDOWN,
};

/// Environment variable that re-routes a binary into [`worker_main`].
/// Coordinators set it when spawning, so any binary that calls
/// [`maybe_run_worker`] first thing in `main` can serve as its own worker
/// executable.
pub const WORKER_ENV: &str = "PLP_FED_WORKER";

/// Worker exit codes (coordinator-side diagnostics; any non-zero exit is
/// handled the same way — respawn or drop).
pub mod exit_code {
    /// Clean shutdown (coordinator request or closed stdin).
    pub const CLEAN: i32 = 0;
    /// A coordinator→worker frame failed its CRC or framing.
    pub const BAD_FRAME: i32 = 10;
    /// A message violated the protocol (unknown kind, round before setup).
    pub const PROTOCOL: i32 = 11;
    /// A payload failed to decode.
    pub const DECODE: i32 = 12;
    /// A systemic training error (bad config, shape mismatch).
    pub const TRAIN: i32 = 13;
    /// An injected mid-round exit fault fired.
    pub const INJECTED_EXIT: i32 = 17;
}

/// If [`WORKER_ENV`] is set to `1`, runs the worker loop on
/// stdin/stdout and exits the process; otherwise returns immediately.
/// Call this at the top of `main` in any binary used as a worker command.
pub fn maybe_run_worker() {
    if std::env::var(WORKER_ENV).as_deref() == Ok("1") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let code = worker_main(&mut stdin.lock(), &mut stdout.lock());
        std::process::exit(code);
    }
}

struct WorkerState {
    setup: Setup,
    faults: FaultInjector,
    runner: BucketRunner,
}

/// Runs the worker loop over explicit streams until the coordinator hangs
/// up, returning the process exit code. Testable without a real process
/// boundary by handing it in-memory buffers.
pub fn worker_main(input: &mut impl Read, output: &mut impl Write) -> i32 {
    silence_injected_panics();
    let mut state: Option<WorkerState> = None;
    loop {
        match read_frame_event(input) {
            FrameEvent::Closed => return exit_code::CLEAN,
            FrameEvent::Corrupt { what } => {
                eprintln!("plp-fed worker: corrupt request frame: {what}");
                return exit_code::BAD_FRAME;
            }
            FrameEvent::Frame { kind, payload } => match kind {
                MSG_SHUTDOWN => return exit_code::CLEAN,
                MSG_SETUP => match Setup::decode(&payload) {
                    Ok(setup) => {
                        let faults = match setup.plan {
                            Some(plan) => match FaultInjector::try_with_plan(plan) {
                                Ok(f) => f,
                                Err(e) => {
                                    eprintln!("plp-fed worker: bad fault plan: {e}");
                                    return exit_code::DECODE;
                                }
                            },
                            None => FaultInjector::default(),
                        };
                        state = Some(WorkerState {
                            setup,
                            faults,
                            runner: BucketRunner::new(),
                        });
                    }
                    Err(e) => {
                        eprintln!("plp-fed worker: {e}");
                        return exit_code::DECODE;
                    }
                },
                MSG_ROUND => {
                    let Some(st) = state.as_mut() else {
                        eprintln!("plp-fed worker: round before setup");
                        return exit_code::PROTOCOL;
                    };
                    match handle_round(st, &payload, output) {
                        Ok(()) => {}
                        Err(code) => return code,
                    }
                }
                other => {
                    eprintln!("plp-fed worker: unknown message kind {other}");
                    return exit_code::PROTOCOL;
                }
            },
        }
    }
}

fn handle_round(st: &mut WorkerState, payload: &[u8], output: &mut impl Write) -> Result<(), i32> {
    let req = RoundRequest::decode(payload).map_err(|e| {
        eprintln!("plp-fed worker: {e}");
        exit_code::DECODE
    })?;
    let incarnation = st.setup.incarnation;

    // Injected mid-round death: disappear without a reply, like a real
    // OOM-kill. Keyed on (step, incarnation), so the respawned worker
    // draws a fresh decision and recovery converges.
    if st.faults.exit_worker(req.step, incarnation) {
        std::process::exit(exit_code::INJECTED_EXIT);
    }

    let obs = Observer::disabled();
    let mut results = Vec::with_capacity(req.assignments.len());
    for (index, bucket) in &req.assignments {
        let update = st
            .runner
            .run_bucket(
                &req.params,
                bucket,
                &st.setup.hp,
                req.step,
                req.step_seed,
                *index as usize,
                &st.faults,
                &obs,
            )
            .map_err(|e| {
                eprintln!("plp-fed worker: bucket {index} failed: {e}");
                exit_code::TRAIN
            })?;
        results.push((*index, update.map(WireUpdate::from)));
    }

    // Injected straggler: the work is done, the reply just takes its
    // time. The coordinator's deadline machinery decides whether to wait
    // it out or kill and reassign.
    if let Some(ms) = st.faults.stall_worker(req.step, incarnation) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    let reply = RoundReply {
        step: req.step,
        attempt: req.attempt,
        results,
    }
    .encode();

    // Injected pipe garbling: flip one byte *after* the CRC footer was
    // computed, past the length prefix so the stream stays aligned and
    // the coordinator can detect-and-re-request. Keyed on (step,
    // attempt): the re-requested reply draws a fresh decision.
    let mut frame = encode_frame(MSG_REPLY, &reply);
    if let Some(h) = st.faults.corrupt_reply_frame(req.step, req.attempt) {
        let span = frame.len() - 4;
        let offset = 4 + (h as usize % span);
        frame[offset] ^= 0x40;
    }
    let duplicate = st.faults.duplicate_reply(req.step, req.attempt);

    let send = |output: &mut dyn Write, bytes: &[u8]| -> Result<(), i32> {
        output.write_all(bytes).map_err(|_| exit_code::CLEAN)?;
        output.flush().map_err(|_| exit_code::CLEAN)
    };
    send(output, &frame)?;
    if duplicate {
        // A retransmit bug: the same bytes twice. The coordinator must
        // de-duplicate by (step, attempt).
        send(output, &frame)?;
    }
    Ok(())
}

/// Injected bucket panics are expected during drills; keep the default
/// hook for everything else so real bugs still print a backtrace.
fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected bucket-worker fault"));
        if !injected {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::config::Hyperparameters;
    use plp_core::faults::FaultPlan;
    use plp_data::grouping::Bucket;
    use plp_model::params::ModelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup(plan: Option<FaultPlan>) -> Setup {
        Setup {
            hp: Hyperparameters {
                embedding_dim: 4,
                negative_samples: 2,
                max_steps: 2,
                ..Hyperparameters::default()
            },
            plan,
            slot: 0,
            incarnation: 1,
        }
    }

    fn tiny_round(step: u64, attempt: u64) -> RoundRequest {
        let mut rng = StdRng::seed_from_u64(3);
        RoundRequest {
            step,
            step_seed: 99,
            attempt,
            params: ModelParams::init(&mut rng, 8, 4).unwrap(),
            assignments: vec![(
                2,
                Bucket {
                    user_indices: vec![0],
                    tokens: vec![1, 2, 3, 4, 2, 1],
                },
            )],
        }
    }

    fn run_session(frames: &[(u8, Vec<u8>)]) -> (i32, Vec<u8>) {
        let mut input = Vec::new();
        for (kind, payload) in frames {
            input.extend_from_slice(&encode_frame(*kind, payload));
        }
        let mut cursor = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let code = worker_main(&mut cursor, &mut output);
        (code, output)
    }

    #[test]
    fn worker_computes_a_round_and_exits_cleanly() {
        let setup = tiny_setup(None).encode().unwrap();
        let round = tiny_round(1, 5).encode();
        let (code, output) = run_session(&[
            (MSG_SETUP, setup),
            (MSG_ROUND, round),
            (MSG_SHUTDOWN, vec![]),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let FrameEvent::Frame { kind, payload } = read_frame_event(&mut cur) else {
            panic!("expected one reply frame");
        };
        assert_eq!(kind, MSG_REPLY);
        let reply = RoundReply::decode(&payload).unwrap();
        assert_eq!(reply.step, 1);
        assert_eq!(reply.attempt, 5);
        assert_eq!(reply.results.len(), 1);
        assert_eq!(reply.results[0].0, 2);
        assert!(
            reply.results[0].1.is_some(),
            "healthy bucket returns a delta"
        );
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
    }

    #[test]
    fn worker_reply_matches_in_process_runner_bitwise() {
        let setup = tiny_setup(None);
        let round = tiny_round(1, 0);
        let (code, output) = run_session(&[
            (MSG_SETUP, setup.encode().unwrap()),
            (MSG_ROUND, round.encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let FrameEvent::Frame { payload, .. } = read_frame_event(&mut cur) else {
            panic!("expected a reply frame");
        };
        let reply = RoundReply::decode(&payload).unwrap();
        let wire = reply.results[0].1.clone().unwrap();

        let mut runner = BucketRunner::new();
        let local = runner
            .run_bucket(
                &round.params,
                &round.assignments[0].1,
                &setup.hp,
                round.step,
                round.step_seed,
                2,
                &FaultInjector::default(),
                &Observer::disabled(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            wire.into_update(2),
            local,
            "a bucket's result must be identical across the process boundary"
        );
    }

    #[test]
    fn corrupt_and_duplicate_reply_faults_show_on_the_wire() {
        let plan = FaultPlan {
            corrupt_frame_rate: 1.0,
            ..FaultPlan::quiet(5)
        };
        let (code, output) = run_session(&[
            (MSG_SETUP, tiny_setup(Some(plan)).encode().unwrap()),
            (MSG_ROUND, tiny_round(1, 0).encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        assert!(
            matches!(read_frame_event(&mut cur), FrameEvent::Corrupt { .. }),
            "a corrupt-frame fault must fail the coordinator's CRC check"
        );

        let plan = FaultPlan {
            duplicate_reply_rate: 1.0,
            ..FaultPlan::quiet(5)
        };
        let (code, output) = run_session(&[
            (MSG_SETUP, tiny_setup(Some(plan)).encode().unwrap()),
            (MSG_ROUND, tiny_round(1, 0).encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let first = read_frame_event(&mut cur);
        let second = read_frame_event(&mut cur);
        assert_eq!(first, second, "the duplicate is a byte-exact retransmit");
        assert!(matches!(first, FrameEvent::Frame { .. }));
    }

    #[test]
    fn protocol_violations_exit_with_distinct_codes() {
        let (code, _) = run_session(&[(MSG_ROUND, tiny_round(1, 0).encode())]);
        assert_eq!(code, exit_code::PROTOCOL, "round before setup");
        let (code, _) = run_session(&[(200, vec![])]);
        assert_eq!(code, exit_code::PROTOCOL, "unknown kind");
        let (code, _) = run_session(&[(MSG_SETUP, b"junk".to_vec())]);
        assert_eq!(code, exit_code::DECODE, "bad setup payload");
        let setup = tiny_setup(None).encode().unwrap();
        let (code, _) = run_session(&[(MSG_SETUP, setup), (MSG_ROUND, vec![1, 2])]);
        assert_eq!(code, exit_code::DECODE, "bad round payload");
    }
}
