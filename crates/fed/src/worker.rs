//! The worker side of the federated round protocol.
//!
//! A worker is a child process wired to the coordinator by its stdin
//! (requests) and stdout (replies). It holds no state beyond the session
//! setup: every round ships the full θ_t, so workers are *stateless
//! between rounds* — killing one loses nothing but in-flight work, which
//! the coordinator re-requests elsewhere. Combined with bucket results
//! being pure functions of `(θ, bucket, step_seed, index)`, this is what
//! makes retry and respawn invisible in the trained bits.
//!
//! The worker also *hosts* the injected worker-level faults of
//! [`plp_core::faults::FaultPlan`]: stalls (sleep before replying), exits
//! (die mid-round without replying), reply-frame corruption (flip a byte
//! after the CRC was computed) and duplicate replies. All decisions are
//! drawn from the plan shipped in the session setup, keyed exactly as the
//! coordinator expects, so drills replay identically at any worker count.

use std::io::{Read, Write};
use std::path::PathBuf;

use plp_core::faults::FaultInjector;
use plp_core::plp::BucketRunner;
use plp_obs::trace::{derive_span_id, TraceConfig, TraceContext};
use plp_obs::Observer;

use crate::frame::{encode_frame, read_frame_event, FrameEvent};
use crate::protocol::{
    RoundReply, RoundRequest, Setup, WireUpdate, MSG_REPLY, MSG_ROUND, MSG_SETUP, MSG_SHUTDOWN,
    PROTOCOL_VERSION,
};

/// Environment variable that re-routes a binary into [`worker_main`].
/// Coordinators set it when spawning, so any binary that calls
/// [`maybe_run_worker`] first thing in `main` can serve as its own worker
/// executable.
pub const WORKER_ENV: &str = "PLP_FED_WORKER";

/// Environment variable naming the directory worker flight recorders
/// dump into. The coordinator sets it when spawning iff its own tracer
/// has a dump directory; each worker writes
/// `trace_worker_<pid>.jsonl` there at session end and on fault exits.
pub const TRACE_DIR_ENV: &str = "PLP_FED_TRACE_DIR";

/// Worker exit codes (coordinator-side diagnostics; any non-zero exit is
/// handled the same way — respawn or drop).
pub mod exit_code {
    /// Clean shutdown (coordinator request or closed stdin).
    pub const CLEAN: i32 = 0;
    /// A coordinator→worker frame failed its CRC or framing.
    pub const BAD_FRAME: i32 = 10;
    /// A message violated the protocol (unknown kind, round before setup).
    pub const PROTOCOL: i32 = 11;
    /// A payload failed to decode.
    pub const DECODE: i32 = 12;
    /// A systemic training error (bad config, shape mismatch).
    pub const TRAIN: i32 = 13;
    /// The coordinator speaks a different protocol version.
    pub const VERSION: i32 = 14;
    /// An injected mid-round exit fault fired.
    pub const INJECTED_EXIT: i32 = 17;
}

/// If [`WORKER_ENV`] is set to `1`, runs the worker loop on
/// stdin/stdout and exits the process; otherwise returns immediately.
/// Call this at the top of `main` in any binary used as a worker command.
pub fn maybe_run_worker() {
    if std::env::var(WORKER_ENV).as_deref() == Ok("1") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let code = worker_main(&mut stdin.lock(), &mut stdout.lock());
        std::process::exit(code);
    }
}

/// The observer a spawned worker runs under: traced iff the coordinator
/// exported [`TRACE_DIR_ENV`], inert otherwise — so tracing is decided
/// by exactly one knob on the coordinator side.
fn observer_from_env() -> Observer {
    match std::env::var(TRACE_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => {
            let obs = Observer::new("fed_worker");
            let pid = std::process::id();
            obs.attach_tracer(TraceConfig {
                process: format!("worker-{pid}"),
                capacity: 4096,
                dump_path: Some(PathBuf::from(dir).join(format!("trace_worker_{pid}.jsonl"))),
            });
            obs
        }
        _ => Observer::disabled(),
    }
}

struct WorkerState {
    setup: Setup,
    faults: FaultInjector,
    runner: BucketRunner,
}

/// Runs the worker loop over explicit streams until the coordinator hangs
/// up, returning the process exit code. Testable without a real process
/// boundary by handing it in-memory buffers. Tracing is enabled iff the
/// coordinator exported [`TRACE_DIR_ENV`].
pub fn worker_main(input: &mut impl Read, output: &mut impl Write) -> i32 {
    worker_main_with_observer(input, output, &observer_from_env())
}

/// [`worker_main`] under an explicit observer (tests and embedders hand
/// in a traced or memory-sink observer directly). The flight recorder,
/// if attached, is dumped before returning so a session's trace survives
/// the process.
pub fn worker_main_with_observer(
    input: &mut impl Read,
    output: &mut impl Write,
    obs: &Observer,
) -> i32 {
    silence_injected_panics();
    let code = worker_loop(input, output, obs);
    if let Some(tracer) = obs.tracer() {
        tracer.dump_on_fault(if code == exit_code::CLEAN {
            "worker_session_end"
        } else {
            "worker_error_exit"
        });
    }
    code
}

fn worker_loop(input: &mut impl Read, output: &mut impl Write, obs: &Observer) -> i32 {
    let mut state: Option<WorkerState> = None;
    loop {
        match read_frame_event(input) {
            FrameEvent::Closed => return exit_code::CLEAN,
            FrameEvent::Corrupt { what } => {
                eprintln!("plp-fed worker: corrupt request frame: {what}");
                return exit_code::BAD_FRAME;
            }
            FrameEvent::Frame { kind, ctx, payload } => match kind {
                MSG_SHUTDOWN => return exit_code::CLEAN,
                MSG_SETUP => match Setup::decode(&payload) {
                    Ok(setup) => {
                        if setup.protocol_version != PROTOCOL_VERSION {
                            eprintln!(
                                "plp-fed worker: protocol version {} != {}",
                                setup.protocol_version, PROTOCOL_VERSION
                            );
                            return exit_code::VERSION;
                        }
                        let faults = match setup.plan {
                            Some(plan) => match FaultInjector::try_with_plan(plan) {
                                Ok(f) => f,
                                Err(e) => {
                                    eprintln!("plp-fed worker: bad fault plan: {e}");
                                    return exit_code::DECODE;
                                }
                            },
                            None => FaultInjector::default(),
                        };
                        state = Some(WorkerState {
                            setup,
                            faults,
                            runner: BucketRunner::new(),
                        });
                    }
                    Err(e) => {
                        eprintln!("plp-fed worker: {e}");
                        return exit_code::DECODE;
                    }
                },
                MSG_ROUND => {
                    let Some(st) = state.as_mut() else {
                        eprintln!("plp-fed worker: round before setup");
                        return exit_code::PROTOCOL;
                    };
                    match handle_round(st, ctx, &payload, output, obs) {
                        Ok(()) => {}
                        Err(code) => return code,
                    }
                }
                other => {
                    eprintln!("plp-fed worker: unknown message kind {other}");
                    return exit_code::PROTOCOL;
                }
            },
        }
    }
}

fn handle_round(
    st: &mut WorkerState,
    ctx: Option<TraceContext>,
    payload: &[u8],
    output: &mut impl Write,
    obs: &Observer,
) -> Result<(), i32> {
    let req = RoundRequest::decode(payload).map_err(|e| {
        eprintln!("plp-fed worker: {e}");
        exit_code::DECODE
    })?;
    let incarnation = st.setup.incarnation;
    let tracer = obs.tracer();

    // Injected mid-round death: disappear without a reply, like a real
    // OOM-kill. Keyed on (step, incarnation), so the respawned worker
    // draws a fresh decision and recovery converges. The flight recorder
    // is dumped first — a chaos-drill kill is exactly the moment the
    // trace is worth keeping.
    if st.faults.exit_worker(req.step, incarnation) {
        if let Some(t) = &tracer {
            if let Some(c) = ctx {
                t.instant(
                    "fed_injected_exit",
                    "fed",
                    c.trace_id,
                    c.parent_span,
                    [("step", req.step), ("incarnation", incarnation)],
                );
            }
            t.dump_on_fault("injected_exit");
        }
        std::process::exit(exit_code::INJECTED_EXIT);
    }

    // The worker-side round span parents under the coordinator's send
    // span via the frame-header context; its id is a pure function of
    // (trace_id, attempt), so the coordinator-side stitcher can predict
    // it without a return channel.
    let round_span = match (&tracer, ctx) {
        (Some(t), Some(c)) => Some(
            t.span(
                "fed_worker_round",
                "fed",
                c.trace_id,
                derive_span_id(c.trace_id, "fed_worker_round", req.attempt),
                c.parent_span,
            )
            .arg("step", req.step)
            .arg("incarnation", incarnation),
        ),
        _ => None,
    };

    let mut results = Vec::with_capacity(req.assignments.len());
    for (index, bucket) in &req.assignments {
        let _bucket_span = match (&tracer, ctx, &round_span) {
            (Some(t), Some(c), Some(rs)) => Some(
                t.span(
                    "fed_bucket",
                    "fed",
                    c.trace_id,
                    derive_span_id(c.trace_id, "fed_bucket", *index),
                    rs.span_id(),
                )
                .arg("bucket", *index),
            ),
            _ => None,
        };
        let update = st
            .runner
            .run_bucket(
                &req.params,
                bucket,
                &st.setup.hp,
                req.step,
                req.step_seed,
                *index as usize,
                &st.faults,
                obs,
            )
            .map_err(|e| {
                eprintln!("plp-fed worker: bucket {index} failed: {e}");
                exit_code::TRAIN
            })?;
        results.push((*index, update.map(WireUpdate::from)));
    }

    // Injected straggler: the work is done, the reply just takes its
    // time. The coordinator's deadline machinery decides whether to wait
    // it out or kill and reassign.
    if let Some(ms) = st.faults.stall_worker(req.step, incarnation) {
        if let (Some(t), Some(c)) = (&tracer, ctx) {
            t.instant(
                "fed_stall",
                "fed",
                c.trace_id,
                c.parent_span,
                [("step", req.step), ("stall_ms", ms)],
            );
        }
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    drop(round_span);

    let reply = RoundReply {
        step: req.step,
        attempt: req.attempt,
        results,
    }
    .encode();

    // Injected pipe garbling: flip one byte *after* the CRC footer was
    // computed, past the length prefix so the stream stays aligned and
    // the coordinator can detect-and-re-request. Keyed on (step,
    // attempt): the re-requested reply draws a fresh decision.
    let mut frame = encode_frame(MSG_REPLY, &reply);
    if let Some(h) = st.faults.corrupt_reply_frame(req.step, req.attempt) {
        let span = frame.len() - 4;
        let offset = 4 + (h as usize % span);
        frame[offset] ^= 0x40;
    }
    let duplicate = st.faults.duplicate_reply(req.step, req.attempt);

    let send = |output: &mut dyn Write, bytes: &[u8]| -> Result<(), i32> {
        output.write_all(bytes).map_err(|_| exit_code::CLEAN)?;
        output.flush().map_err(|_| exit_code::CLEAN)
    };
    send(output, &frame)?;
    if duplicate {
        // A retransmit bug: the same bytes twice. The coordinator must
        // de-duplicate by (step, attempt).
        send(output, &frame)?;
    }
    Ok(())
}

/// Injected bucket panics are expected during drills; keep the default
/// hook for everything else so real bugs still print a backtrace.
fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected bucket-worker fault"));
        if !injected {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::config::Hyperparameters;
    use plp_core::faults::FaultPlan;
    use plp_data::grouping::Bucket;
    use plp_model::params::ModelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup(plan: Option<FaultPlan>) -> Setup {
        Setup {
            protocol_version: PROTOCOL_VERSION,
            hp: Hyperparameters {
                embedding_dim: 4,
                negative_samples: 2,
                max_steps: 2,
                ..Hyperparameters::default()
            },
            plan,
            slot: 0,
            incarnation: 1,
        }
    }

    fn tiny_round(step: u64, attempt: u64) -> RoundRequest {
        let mut rng = StdRng::seed_from_u64(3);
        RoundRequest {
            step,
            step_seed: 99,
            attempt,
            params: ModelParams::init(&mut rng, 8, 4).unwrap(),
            assignments: vec![(
                2,
                Bucket {
                    user_indices: vec![0],
                    tokens: vec![1, 2, 3, 4, 2, 1],
                },
            )],
        }
    }

    fn run_session(frames: &[(u8, Vec<u8>)]) -> (i32, Vec<u8>) {
        let mut input = Vec::new();
        for (kind, payload) in frames {
            input.extend_from_slice(&encode_frame(*kind, payload));
        }
        let mut cursor = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let code = worker_main(&mut cursor, &mut output);
        (code, output)
    }

    #[test]
    fn worker_computes_a_round_and_exits_cleanly() {
        let setup = tiny_setup(None).encode().unwrap();
        let round = tiny_round(1, 5).encode();
        let (code, output) = run_session(&[
            (MSG_SETUP, setup),
            (MSG_ROUND, round),
            (MSG_SHUTDOWN, vec![]),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let FrameEvent::Frame { kind, payload, .. } = read_frame_event(&mut cur) else {
            panic!("expected one reply frame");
        };
        assert_eq!(kind, MSG_REPLY);
        let reply = RoundReply::decode(&payload).unwrap();
        assert_eq!(reply.step, 1);
        assert_eq!(reply.attempt, 5);
        assert_eq!(reply.results.len(), 1);
        assert_eq!(reply.results[0].0, 2);
        assert!(
            reply.results[0].1.is_some(),
            "healthy bucket returns a delta"
        );
        assert_eq!(read_frame_event(&mut cur), FrameEvent::Closed);
    }

    #[test]
    fn worker_reply_matches_in_process_runner_bitwise() {
        let setup = tiny_setup(None);
        let round = tiny_round(1, 0);
        let (code, output) = run_session(&[
            (MSG_SETUP, setup.encode().unwrap()),
            (MSG_ROUND, round.encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let FrameEvent::Frame { payload, .. } = read_frame_event(&mut cur) else {
            panic!("expected a reply frame");
        };
        let reply = RoundReply::decode(&payload).unwrap();
        let wire = reply.results[0].1.clone().unwrap();

        let mut runner = BucketRunner::new();
        let local = runner
            .run_bucket(
                &round.params,
                &round.assignments[0].1,
                &setup.hp,
                round.step,
                round.step_seed,
                2,
                &FaultInjector::default(),
                &Observer::disabled(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            wire.into_update(2),
            local,
            "a bucket's result must be identical across the process boundary"
        );
    }

    #[test]
    fn corrupt_and_duplicate_reply_faults_show_on_the_wire() {
        let plan = FaultPlan {
            corrupt_frame_rate: 1.0,
            ..FaultPlan::quiet(5)
        };
        let (code, output) = run_session(&[
            (MSG_SETUP, tiny_setup(Some(plan)).encode().unwrap()),
            (MSG_ROUND, tiny_round(1, 0).encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        assert!(
            matches!(read_frame_event(&mut cur), FrameEvent::Corrupt { .. }),
            "a corrupt-frame fault must fail the coordinator's CRC check"
        );

        let plan = FaultPlan {
            duplicate_reply_rate: 1.0,
            ..FaultPlan::quiet(5)
        };
        let (code, output) = run_session(&[
            (MSG_SETUP, tiny_setup(Some(plan)).encode().unwrap()),
            (MSG_ROUND, tiny_round(1, 0).encode()),
        ]);
        assert_eq!(code, exit_code::CLEAN);
        let mut cur = std::io::Cursor::new(output);
        let first = read_frame_event(&mut cur);
        let second = read_frame_event(&mut cur);
        assert_eq!(first, second, "the duplicate is a byte-exact retransmit");
        assert!(matches!(first, FrameEvent::Frame { .. }));
    }

    #[test]
    fn protocol_violations_exit_with_distinct_codes() {
        let (code, _) = run_session(&[(MSG_ROUND, tiny_round(1, 0).encode())]);
        assert_eq!(code, exit_code::PROTOCOL, "round before setup");
        // 0x7f: unknown but without the KIND_TRACED flag bit (a flagged
        // unknown kind is indistinguishable from a traced message to a
        // newer peer, and encode_frame refuses to build one).
        let (code, _) = run_session(&[(0x7f, vec![])]);
        assert_eq!(code, exit_code::PROTOCOL, "unknown kind");
        let (code, _) = run_session(&[(MSG_SETUP, b"junk".to_vec())]);
        assert_eq!(code, exit_code::DECODE, "bad setup payload");
        let setup = tiny_setup(None).encode().unwrap();
        let (code, _) = run_session(&[(MSG_SETUP, setup), (MSG_ROUND, vec![1, 2])]);
        assert_eq!(code, exit_code::DECODE, "bad round payload");
    }

    #[test]
    fn protocol_version_mismatch_is_rejected_cleanly() {
        let mut setup = tiny_setup(None);
        setup.protocol_version = PROTOCOL_VERSION + 1;
        let (code, output) = run_session(&[
            (MSG_SETUP, setup.encode().unwrap()),
            (MSG_ROUND, tiny_round(1, 0).encode()),
        ]);
        assert_eq!(code, exit_code::VERSION);
        assert!(output.is_empty(), "no reply from a version-rejected worker");
    }

    #[test]
    fn traced_round_parents_worker_spans_under_the_wire_context() {
        use crate::frame::encode_frame_traced;
        use plp_obs::trace::{derive_trace_id, DOMAIN_FED_ROUND};

        let ctx = TraceContext {
            trace_id: derive_trace_id(42, DOMAIN_FED_ROUND, 1),
            parent_span: 0x1234_5678_9abc_def0,
        };
        let mut input = Vec::new();
        input.extend_from_slice(&encode_frame(
            MSG_SETUP,
            &tiny_setup(None).encode().unwrap(),
        ));
        input.extend_from_slice(&encode_frame_traced(
            MSG_ROUND,
            Some(ctx),
            &tiny_round(1, 3).encode(),
        ));
        input.extend_from_slice(&encode_frame(MSG_SHUTDOWN, &[]));

        let obs = Observer::new("fed_worker_test");
        let tracer = obs
            .attach_tracer(TraceConfig::named("worker-test"))
            .unwrap();
        let mut cursor = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let code = worker_main_with_observer(&mut cursor, &mut output, &obs);
        assert_eq!(code, exit_code::CLEAN);

        let spans = tracer.snapshot();
        let round = spans
            .iter()
            .find(|s| s.name == "fed_worker_round")
            .expect("round span recorded");
        assert_eq!(round.trace_id, ctx.trace_id);
        assert_eq!(round.parent_id, ctx.parent_span);
        assert_eq!(
            round.span_id,
            derive_span_id(ctx.trace_id, "fed_worker_round", 3),
            "span id is a pure function of (trace_id, attempt)"
        );
        let bucket = spans
            .iter()
            .find(|s| s.name == "fed_bucket")
            .expect("bucket span recorded");
        assert_eq!(bucket.parent_id, round.span_id);

        // An untraced round frame must still be answered — and record no
        // spans at all.
        let before = tracer.snapshot().len();
        let mut input2 = Vec::new();
        input2.extend_from_slice(&encode_frame(
            MSG_SETUP,
            &tiny_setup(None).encode().unwrap(),
        ));
        input2.extend_from_slice(&encode_frame(MSG_ROUND, &tiny_round(2, 0).encode()));
        let mut cursor2 = std::io::Cursor::new(input2);
        let mut output2 = Vec::new();
        assert_eq!(
            worker_main_with_observer(&mut cursor2, &mut output2, &obs),
            exit_code::CLEAN
        );
        assert!(!output2.is_empty(), "untraced round still gets a reply");
        assert_eq!(
            tracer.snapshot().len(),
            before,
            "no wire context means no spans"
        );
    }
}
