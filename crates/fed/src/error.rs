//! Error type of the federated layer.

use std::fmt;

use plp_core::CoreError;

/// Errors surfaced by the federated coordinator and worker codecs.
///
/// Recoverable conditions (a torn frame, a dead worker) are handled
/// *inside* the coordinator's retry machinery and never reach this type;
/// what escapes here is systemic: malformed protocol state, spawn
/// failures, or training errors from the core layer.
#[derive(Debug)]
pub enum FedError {
    /// A core training error (configuration, model, privacy, ...).
    Core(CoreError),
    /// An operating-system level failure (spawn, pipe write).
    Io(std::io::Error),
    /// A well-framed message whose payload does not decode.
    Decode {
        /// What failed to decode.
        what: String,
    },
    /// The peer violated the round protocol.
    Protocol {
        /// The violation.
        what: String,
    },
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::Core(e) => write!(f, "core error: {e}"),
            FedError::Io(e) => write!(f, "io error: {e}"),
            FedError::Decode { what } => write!(f, "decode error: {what}"),
            FedError::Protocol { what } => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<CoreError> for FedError {
    fn from(e: CoreError) -> Self {
        FedError::Core(e)
    }
}

impl From<std::io::Error> for FedError {
    fn from(e: std::io::Error) -> Self {
        FedError::Io(e)
    }
}

impl From<FedError> for CoreError {
    /// Collapses a federated failure into the core error space so a
    /// [`plp_core::plp::BucketExecutor`] implementation can surface it
    /// through the training loop.
    fn from(e: FedError) -> Self {
        match e {
            FedError::Core(c) => c,
            other => CoreError::Io {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FedError = CoreError::BadConfig {
            name: "workers",
            expected: ">= 1",
        }
        .into();
        assert!(e.to_string().contains("workers"));
        let back: CoreError = e.into();
        assert!(matches!(back, CoreError::BadConfig { .. }));

        let io: FedError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone").into();
        let core: CoreError = io.into();
        assert!(matches!(core, CoreError::Io { .. }));
        assert!(core.to_string().contains("gone"));

        let d = FedError::Decode {
            what: "reply header".into(),
        };
        assert!(d.to_string().contains("reply header"));
    }
}
