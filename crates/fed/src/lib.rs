//! Fault-tolerant multi-process federated training.
//!
//! `plp-fed` runs the paper's federated-averaging loop across worker
//! *processes*: a coordinator implements the trainer's
//! [`BucketExecutor`](plp_core::BucketExecutor) seam, fans each step's
//! sampled buckets out to N workers over length-prefixed, CRC-guarded
//! pipes, and reduces the per-bucket deltas in fixed order. Because the
//! loop around the seam is the very same code the single-process trainer
//! runs and bucket updates are pure functions of `(θ, bucket, step_seed,
//! index)`, the distributed run is **bit-identical** — parameters, RDP
//! ledger and ε — to `train_plp` on one process.
//!
//! Robustness is the point, not an afterthought:
//!
//! - per-round worker deadlines with straggler kills ([`retry`]),
//! - bounded retry/respawn with exponential backoff,
//! - CRC-rejected garbled frames re-requested over the still-aligned
//!   pipe ([`frame`]),
//! - duplicate and stale replies de-duplicated by
//!   `(incarnation, step, attempt)` keys,
//! - workers that exhaust their retry budget dropped into the trainer's
//!   DP-safe skipped-bucket semantics — fixed `q·W/λ` denominator,
//!   unchanged σ and RDP charge ([`coordinator`]),
//! - coordinator crash recovery via the ordinary `PLPC` checkpoint
//!   (resume with a `FedExecutor` and the run continues bit-exact).
//!
//! Worker-level fault injection (stalls, mid-round exits, corrupted and
//! duplicated reply frames) lives in `plp_core::faults` and is hosted by
//! [`worker`]; the `fed_chaos` drill binary in `plp-bench` proves the
//! recovery paths end-to-end.

pub mod coordinator;
pub mod error;
pub mod frame;
pub mod protocol;
pub mod retry;
pub mod worker;

pub use coordinator::{FedConfig, FedExecutor, RoundStats};
pub use error::FedError;
pub use frame::{
    encode_frame, encode_frame_traced, read_frame_event, write_frame, write_frame_traced,
    FrameEvent, KIND_TRACED,
};
pub use protocol::PROTOCOL_VERSION;
pub use retry::RetryPolicy;
pub use worker::{
    maybe_run_worker, worker_main, worker_main_with_observer, TRACE_DIR_ENV, WORKER_ENV,
};

#[cfg(test)]
mod trace_determinism {
    /// `plp_obs::trace::mix64` is a deliberate copy of
    /// `plp_linalg::sample::mix64` (`plp-obs` must not depend on the math
    /// stack). This pins the two implementations to each other so trace
    /// ids keep following the run's counter discipline.
    #[test]
    fn obs_mix64_matches_linalg_mix64() {
        for x in [0u64, 1, 42, 0x9e37_79b9_7f4a_7c15, u64::MAX] {
            assert_eq!(plp_obs::trace::mix64(x), plp_linalg::sample::mix64(x));
        }
    }
}
