//! Fault-tolerant multi-process federated training.
//!
//! `plp-fed` runs the paper's federated-averaging loop across worker
//! *processes*: a coordinator implements the trainer's
//! [`BucketExecutor`](plp_core::BucketExecutor) seam, fans each step's
//! sampled buckets out to N workers over length-prefixed, CRC-guarded
//! pipes, and reduces the per-bucket deltas in fixed order. Because the
//! loop around the seam is the very same code the single-process trainer
//! runs and bucket updates are pure functions of `(θ, bucket, step_seed,
//! index)`, the distributed run is **bit-identical** — parameters, RDP
//! ledger and ε — to `train_plp` on one process.
//!
//! Robustness is the point, not an afterthought:
//!
//! - per-round worker deadlines with straggler kills ([`retry`]),
//! - bounded retry/respawn with exponential backoff,
//! - CRC-rejected garbled frames re-requested over the still-aligned
//!   pipe ([`frame`]),
//! - duplicate and stale replies de-duplicated by
//!   `(incarnation, step, attempt)` keys,
//! - workers that exhaust their retry budget dropped into the trainer's
//!   DP-safe skipped-bucket semantics — fixed `q·W/λ` denominator,
//!   unchanged σ and RDP charge ([`coordinator`]),
//! - coordinator crash recovery via the ordinary `PLPC` checkpoint
//!   (resume with a `FedExecutor` and the run continues bit-exact).
//!
//! Worker-level fault injection (stalls, mid-round exits, corrupted and
//! duplicated reply frames) lives in `plp_core::faults` and is hosted by
//! [`worker`]; the `fed_chaos` drill binary in `plp-bench` proves the
//! recovery paths end-to-end.

pub mod coordinator;
pub mod error;
pub mod frame;
pub mod protocol;
pub mod retry;
pub mod worker;

pub use coordinator::{FedConfig, FedExecutor, RoundStats};
pub use error::FedError;
pub use frame::{encode_frame, read_frame_event, write_frame, FrameEvent};
pub use retry::RetryPolicy;
pub use worker::{maybe_run_worker, worker_main, WORKER_ENV};
