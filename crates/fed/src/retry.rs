//! The coordinator's deadline/retry state machine, as pure functions.
//!
//! Every scheduling decision — how long to wait for a worker, how long to
//! back off before a respawn, whether a slot still has retry budget — is
//! computed here from plain integers, with no clocks or I/O, so the state
//! machine is unit-testable and its behaviour documentable:
//!
//! ```text
//!            ┌────────────── reply ok ──────────────► DONE
//!            │
//!  SENT ─────┤─ crc-corrupt reply ──► re-request (same process, retry+1)
//!            │
//!            ├─ deadline expired ──► kill, backoff, respawn, resend
//!            │                        (straggler, retry+1)
//!            ├─ pipe closed ───────► backoff, respawn, resend (retry+1)
//!            │
//!            └─ retries exhausted ─► DROPPED: the slot's buckets join the
//!                                    DP-safe skipped set for this step
//! ```
//!
//! Deadlines stretch and backoff grows exponentially with the retry
//! count (both capped), so a struggling machine gets progressively more
//! slack before its work is abandoned.

/// Retry/deadline knobs for one coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base per-round deadline for a worker's reply, in milliseconds.
    pub deadline_ms: u64,
    /// Retries per worker per round (respawns and re-requests both
    /// count). `0` means a single attempt with no second chances.
    pub max_retries: u32,
    /// Base backoff before a respawn, in milliseconds.
    pub backoff_ms: u64,
}

/// Growth factors are capped at 2⁶ so a misconfigured retry count can
/// never push a deadline or backoff into the hours.
const MAX_GROWTH_SHIFT: u32 = 6;

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline_ms: 10_000,
            max_retries: 3,
            backoff_ms: 20,
        }
    }
}

impl RetryPolicy {
    /// Deadline for the attempt after `retries` failures: the base
    /// deadline, doubled per retry (capped), so stragglers that were
    /// killed once get more slack on their second chance.
    pub fn deadline_for(&self, retries: u32) -> u64 {
        self.deadline_ms
            .saturating_mul(1u64 << retries.min(MAX_GROWTH_SHIFT))
    }

    /// Backoff to sleep before respawning after `retries` failures:
    /// exponential from the base (capped). The first failure retries
    /// immediately-ish; repeat offenders wait longer.
    pub fn backoff_for(&self, retries: u32) -> u64 {
        self.backoff_ms
            .saturating_mul(1u64 << retries.min(MAX_GROWTH_SHIFT))
    }

    /// Whether a slot that has already failed `retries` times may try
    /// again, or must drop its buckets.
    pub fn may_retry(&self, retries: u32) -> bool {
        retries < self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_grow_exponentially_and_cap() {
        let p = RetryPolicy {
            deadline_ms: 100,
            max_retries: 50,
            backoff_ms: 10,
        };
        assert_eq!(p.deadline_for(0), 100);
        assert_eq!(p.deadline_for(1), 200);
        assert_eq!(p.deadline_for(3), 800);
        assert_eq!(p.deadline_for(6), 6_400);
        assert_eq!(p.deadline_for(7), 6_400, "growth caps at 2^6");
        assert_eq!(p.deadline_for(u32::MAX), 6_400);
    }

    #[test]
    fn backoff_grows_and_never_overflows() {
        let p = RetryPolicy {
            deadline_ms: 1,
            max_retries: 3,
            backoff_ms: u64::MAX / 2,
        };
        assert_eq!(p.backoff_for(0), u64::MAX / 2);
        assert_eq!(p.backoff_for(5), u64::MAX, "saturates, never panics");
        let q = RetryPolicy {
            backoff_ms: 20,
            ..RetryPolicy::default()
        };
        assert_eq!(q.backoff_for(0), 20);
        assert_eq!(q.backoff_for(2), 80);
    }

    #[test]
    fn retry_budget_is_exact() {
        let p = RetryPolicy {
            deadline_ms: 1,
            max_retries: 2,
            backoff_ms: 1,
        };
        assert!(p.may_retry(0));
        assert!(p.may_retry(1));
        assert!(!p.may_retry(2), "the budget is max_retries attempts");
        let none = RetryPolicy {
            max_retries: 0,
            ..p
        };
        assert!(!none.may_retry(0), "zero budget means one shot only");
    }
}
