//! Message types and codecs of the coordinator↔worker round protocol.
//!
//! Four message kinds cross the pipe, every one wrapped in the CRC frame
//! of [`crate::frame`]:
//!
//! * [`MSG_SETUP`] (JSON): hyper-parameters, the fault plan, and the
//!   worker's slot + incarnation — sent once per spawned process.
//! * [`MSG_ROUND`] (binary): one step's work order — the step identity and
//!   seed, the full parameter snapshot θ_t, and the assigned buckets with
//!   their *global* indices.
//! * [`MSG_REPLY`] (binary): the worker's bucket results. Deltas travel as
//!   row-sparse gradients with exact `f64` bits, so a bucket computed
//!   remotely aggregates to the same sum as one computed in process.
//! * [`MSG_SHUTDOWN`] (empty): clean worker exit.
//!
//! Every numeric field is little-endian and every length is validated
//! before allocation. Model parameters reuse the snapshot codec of
//! [`plp_model::snapshot`], which enforces the shared frame ceiling.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use plp_core::config::Hyperparameters;
use plp_core::faults::FaultPlan;
use plp_core::plp::BucketUpdate;
use plp_data::frame::checked_frame_len;
use plp_data::grouping::Bucket;
use plp_model::grad::SparseGrad;
use plp_model::params::ModelParams;
use plp_model::snapshot::{decode_params, encode_params};

use crate::error::FedError;

/// The coordinator↔worker protocol version, checked at Setup.
///
/// Version 2 added the optional trace-context frame header (the
/// [`crate::frame::KIND_TRACED`] flag bit). A version-1 worker that
/// receives a traced frame sees an unknown kind byte and exits through
/// its protocol-error path; a version-2 worker handed a mismatched
/// `protocol_version` in Setup rejects the session *before* any round
/// traffic — old workers are refused cleanly either way.
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame kind: coordinator → worker session setup (JSON payload).
pub const MSG_SETUP: u8 = 1;
/// Frame kind: coordinator → worker round work order (binary payload).
pub const MSG_ROUND: u8 = 2;
/// Frame kind: worker → coordinator round results (binary payload).
pub const MSG_REPLY: u8 = 3;
/// Frame kind: coordinator → worker clean shutdown request (empty).
pub const MSG_SHUTDOWN: u8 = 4;

/// Session setup: everything a worker process needs before its first
/// round. JSON because it is sent once and debuggability beats bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setup {
    /// The sender's [`PROTOCOL_VERSION`]; the worker refuses the session
    /// on any mismatch (exit code [`crate::worker::exit_code::VERSION`]).
    pub protocol_version: u32,
    /// The run's hyper-parameters (identical on every worker).
    pub hp: Hyperparameters,
    /// Fault plan to replay, if the run injects faults. The *same* plan
    /// drives coordinator- and worker-side decisions: injector decisions
    /// are pure functions of `(seed, kind, step, index)`, so both sides
    /// agree on which buckets are poisoned without communicating.
    pub plan: Option<FaultPlan>,
    /// The worker's slot in the coordinator's table (diagnostics only).
    pub slot: usize,
    /// The worker's incarnation: a coordinator-wide monotone spawn
    /// counter. Worker-level fault decisions key on it, so a respawned
    /// worker draws *fresh* stall/exit decisions — that is what makes
    /// recovery converge instead of re-hitting the same injected fault.
    pub incarnation: u64,
}

impl Setup {
    /// Encodes the setup payload as JSON bytes.
    ///
    /// # Errors
    /// Propagates serializer failures as [`FedError::Decode`].
    pub fn encode(&self) -> Result<Vec<u8>, FedError> {
        serde_json::to_string(self)
            .map(String::into_bytes)
            .map_err(|e| FedError::Decode {
                what: format!("setup encode: {e}"),
            })
    }

    /// Decodes a setup payload.
    ///
    /// # Errors
    /// [`FedError::Decode`] on malformed JSON.
    pub fn decode(payload: &[u8]) -> Result<Self, FedError> {
        let text = std::str::from_utf8(payload).map_err(|_| FedError::Decode {
            what: "setup payload is not utf-8".into(),
        })?;
        serde_json::from_str(text).map_err(|e| FedError::Decode {
            what: format!("setup decode: {e}"),
        })
    }
}

/// One step's work order for one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRequest {
    /// The global step number (1-based, as in the trainer).
    pub step: u64,
    /// The step's bucket seed; combined with each bucket's global index it
    /// fully determines the bucket's local-SGD randomness.
    pub step_seed: u64,
    /// Coordinator-wide monotone send counter. Replies echo it, which is
    /// how stale answers (from a superseded attempt) are told apart from
    /// current ones, and how reply-frame fault decisions get fresh draws
    /// on every re-request.
    pub attempt: u64,
    /// The current global parameters θ_t.
    pub params: ModelParams,
    /// Assigned buckets with their global index in the step's bucket list.
    pub assignments: Vec<(u64, Bucket)>,
}

fn need(data: &Bytes, n: usize, what: &'static str) -> Result<(), FedError> {
    if data.remaining() < n {
        return Err(FedError::Decode {
            what: format!("truncated {what}"),
        });
    }
    Ok(())
}

/// Reads a `u32` element count and refuses claims whose decoded size (at
/// `elem_bytes` per element) would break the shared frame ceiling.
fn get_count(data: &mut Bytes, elem_bytes: u64, what: &'static str) -> Result<usize, FedError> {
    need(data, 4, what)?;
    let n = data.get_u32_le() as usize;
    if checked_frame_len((n as u64).saturating_mul(elem_bytes)).is_none() {
        return Err(FedError::Decode {
            what: format!("{what} count {n} over max frame size"),
        });
    }
    Ok(n)
}

fn put_usize_vec(buf: &mut BytesMut, v: &[usize]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u64_le(x as u64);
    }
}

fn get_usize_vec(data: &mut Bytes, what: &'static str) -> Result<Vec<usize>, FedError> {
    let n = get_count(data, 8, what)?;
    need(data, n * 8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(
            usize::try_from(data.get_u64_le()).map_err(|_| FedError::Decode {
                what: format!("{what} element overflows usize"),
            })?,
        );
    }
    Ok(out)
}

impl RoundRequest {
    /// Encodes the work order.
    pub fn encode(&self) -> Vec<u8> {
        let snapshot = encode_params(&self.params);
        let mut buf = BytesMut::with_capacity(36 + snapshot.len());
        buf.put_u64_le(self.step);
        buf.put_u64_le(self.step_seed);
        buf.put_u64_le(self.attempt);
        buf.put_u32_le(snapshot.len() as u32);
        buf.put_slice(&snapshot);
        buf.put_u32_le(self.assignments.len() as u32);
        for (index, bucket) in &self.assignments {
            buf.put_u64_le(*index);
            put_usize_vec(&mut buf, &bucket.user_indices);
            put_usize_vec(&mut buf, &bucket.tokens);
        }
        buf.freeze().to_vec()
    }

    /// Decodes a work order.
    ///
    /// # Errors
    /// [`FedError::Decode`] on truncation or a length claim over the
    /// shared frame ceiling; snapshot shape errors propagate as
    /// [`FedError::Core`].
    pub fn decode(payload: &[u8]) -> Result<Self, FedError> {
        let mut data = Bytes::from(payload.to_vec());
        need(&data, 24, "round header")?;
        let step = data.get_u64_le();
        let step_seed = data.get_u64_le();
        let attempt = data.get_u64_le();
        let snap_len = get_count(&mut data, 1, "round snapshot")?;
        need(&data, snap_len, "round snapshot body")?;
        let snapshot = data.slice(..snap_len);
        data = data.slice(snap_len..);
        let params =
            decode_params(snapshot).map_err(|e| FedError::Core(plp_core::CoreError::Model(e)))?;
        let n = get_count(&mut data, 24, "round assignments")?;
        let mut assignments = Vec::with_capacity(n);
        for _ in 0..n {
            need(&data, 8, "assignment index")?;
            let index = data.get_u64_le();
            let user_indices = get_usize_vec(&mut data, "assignment users")?;
            let tokens = get_usize_vec(&mut data, "assignment tokens")?;
            assignments.push((
                index,
                Bucket {
                    user_indices,
                    tokens,
                },
            ));
        }
        Ok(RoundRequest {
            step,
            step_seed,
            attempt,
            params,
            assignments,
        })
    }
}

/// One bucket's result as it crosses the wire: either the clipped delta or
/// a drop marker (worker-side panic barrier / non-finite delta).
pub type WireResult = (u64, Option<WireUpdate>);

/// The transportable part of a [`BucketUpdate`] (the index travels beside
/// it in [`WireResult`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WireUpdate {
    /// The clipped sparse delta, exact bits.
    pub grad: SparseGrad,
    /// Mean local loss (telemetry only).
    pub mean_loss: f64,
    /// Whether clipping rescaled the delta.
    pub clipped: bool,
}

impl From<BucketUpdate> for WireUpdate {
    fn from(u: BucketUpdate) -> Self {
        WireUpdate {
            grad: u.grad,
            mean_loss: u.mean_loss,
            clipped: u.clipped,
        }
    }
}

impl WireUpdate {
    /// Rebuilds the in-process update at global position `index`.
    pub fn into_update(self, index: usize) -> BucketUpdate {
        BucketUpdate {
            index,
            grad: self.grad,
            mean_loss: self.mean_loss,
            clipped: self.clipped,
        }
    }
}

fn put_grad(buf: &mut BytesMut, grad: &SparseGrad) {
    // BTreeMap iteration gives a deterministic row order; f64 bits are
    // copied verbatim so the aggregated sum is bit-identical to local
    // execution.
    buf.put_u32_le(grad.embedding.len() as u32);
    for (&row, v) in &grad.embedding {
        buf.put_u64_le(row as u64);
        buf.put_u32_le(v.len() as u32);
        for &x in v {
            buf.put_f64_le(x);
        }
    }
    buf.put_u32_le(grad.context.len() as u32);
    for (&row, v) in &grad.context {
        buf.put_u64_le(row as u64);
        buf.put_u32_le(v.len() as u32);
        for &x in v {
            buf.put_f64_le(x);
        }
    }
    buf.put_u32_le(grad.bias.len() as u32);
    for (&row, &b) in &grad.bias {
        buf.put_u64_le(row as u64);
        buf.put_f64_le(b);
    }
}

fn get_rows(
    data: &mut Bytes,
    what: &'static str,
) -> Result<std::collections::BTreeMap<usize, Vec<f64>>, FedError> {
    let n = get_count(data, 12, what)?;
    let mut rows = std::collections::BTreeMap::new();
    for _ in 0..n {
        need(data, 8, what)?;
        let row = data.get_u64_le() as usize;
        let dim = get_count(data, 8, what)?;
        need(data, dim * 8, what)?;
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            v.push(data.get_f64_le());
        }
        if rows.insert(row, v).is_some() {
            return Err(FedError::Decode {
                what: format!("duplicate {what} row"),
            });
        }
    }
    Ok(rows)
}

fn get_grad(data: &mut Bytes) -> Result<SparseGrad, FedError> {
    let mut grad = SparseGrad::new();
    grad.embedding = get_rows(data, "grad embedding")?;
    grad.context = get_rows(data, "grad context")?;
    let n = get_count(data, 16, "grad bias")?;
    for _ in 0..n {
        need(data, 16, "grad bias")?;
        let row = data.get_u64_le() as usize;
        let b = data.get_f64_le();
        if grad.bias.insert(row, b).is_some() {
            return Err(FedError::Decode {
                what: "duplicate grad bias row".into(),
            });
        }
    }
    Ok(grad)
}

/// A worker's answer to one [`RoundRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReply {
    /// Echo of the request's step.
    pub step: u64,
    /// Echo of the request's attempt — the coordinator's staleness key.
    pub attempt: u64,
    /// Per-assigned-bucket results, in request order. `None` marks a
    /// bucket the worker dropped behind its panic barrier (injected panic
    /// or non-finite delta); the coordinator folds those into the same
    /// DP-safe skipped count the in-process path uses.
    pub results: Vec<WireResult>,
}

impl RoundReply {
    /// Encodes the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u64_le(self.step);
        buf.put_u64_le(self.attempt);
        buf.put_u32_le(self.results.len() as u32);
        for (index, result) in &self.results {
            buf.put_u64_le(*index);
            match result {
                None => buf.put_u8(0),
                Some(u) => {
                    buf.put_u8(1);
                    put_grad(&mut buf, &u.grad);
                    buf.put_f64_le(u.mean_loss);
                    buf.put_u8(u8::from(u.clipped));
                }
            }
        }
        buf.freeze().to_vec()
    }

    /// Decodes a reply.
    ///
    /// # Errors
    /// [`FedError::Decode`] on truncation, oversize claims, duplicate
    /// rows, or an unknown result tag.
    pub fn decode(payload: &[u8]) -> Result<Self, FedError> {
        let mut data = Bytes::from(payload.to_vec());
        need(&data, 16, "reply header")?;
        let step = data.get_u64_le();
        let attempt = data.get_u64_le();
        let n = get_count(&mut data, 9, "reply results")?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            need(&data, 9, "reply result")?;
            let index = data.get_u64_le();
            match data.get_u8() {
                0 => results.push((index, None)),
                1 => {
                    let grad = get_grad(&mut data)?;
                    need(&data, 9, "reply update tail")?;
                    let mean_loss = data.get_f64_le();
                    let clipped = match data.get_u8() {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(FedError::Decode {
                                what: format!("bad clipped flag {other}"),
                            })
                        }
                    };
                    results.push((
                        index,
                        Some(WireUpdate {
                            grad,
                            mean_loss,
                            clipped,
                        }),
                    ));
                }
                other => {
                    return Err(FedError::Decode {
                        what: format!("bad result tag {other}"),
                    })
                }
            }
        }
        Ok(RoundReply {
            step,
            attempt,
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> ModelParams {
        let mut p = ModelParams::zeros(4, 3);
        p.embedding.set(1, 2, 0.5);
        p.context.set(3, 0, -1.25);
        // An awkward, bit-sensitive value.
        p.bias[2] = (0.1f64 + 0.2).ln();
        p
    }

    fn sample_grad() -> SparseGrad {
        let mut g = SparseGrad::new();
        g.add_embedding_row(0, 1.0, &[0.25, -0.5, 1.0 / 3.0]);
        g.add_context_row(3, 1.0, &[1e-300, 2.0, -0.0]);
        g.add_bias(1, -0.125);
        g
    }

    #[test]
    fn setup_round_trips_via_json() {
        let setup = Setup {
            protocol_version: PROTOCOL_VERSION,
            hp: Hyperparameters::default(),
            plan: Some(FaultPlan {
                worker_stall_rate: 0.25,
                worker_stall_ms: 500,
                ..FaultPlan::quiet(9)
            }),
            slot: 2,
            incarnation: 17,
        };
        let bytes = setup.encode().unwrap();
        assert_eq!(Setup::decode(&bytes).unwrap(), setup);
        assert!(Setup::decode(b"not json").is_err());
        assert!(Setup::decode(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn round_request_round_trips_exactly() {
        let req = RoundRequest {
            step: 7,
            step_seed: 0xDEAD_BEEF_CAFE_F00D,
            attempt: 42,
            params: sample_params(),
            assignments: vec![
                (
                    0,
                    Bucket {
                        user_indices: vec![5, 9],
                        tokens: vec![1, 2, 3, 1],
                    },
                ),
                (
                    3,
                    Bucket {
                        user_indices: vec![],
                        tokens: vec![0],
                    },
                ),
            ],
        };
        let bytes = req.encode();
        let back = RoundRequest::decode(&bytes).unwrap();
        assert_eq!(back, req);
        // Parameter bits survive exactly.
        assert_eq!(back.params.bias[2].to_bits(), req.params.bias[2].to_bits());
    }

    #[test]
    fn round_reply_round_trips_exactly() {
        let reply = RoundReply {
            step: 7,
            attempt: 42,
            results: vec![
                (
                    1,
                    Some(WireUpdate {
                        grad: sample_grad(),
                        mean_loss: 0.75,
                        clipped: true,
                    }),
                ),
                (4, None),
            ],
        };
        let bytes = reply.encode();
        let back = RoundReply::decode(&bytes).unwrap();
        assert_eq!(back, reply);
        let (_, Some(u)) = &back.results[0] else {
            panic!("first result must carry an update");
        };
        assert_eq!(
            u.grad.context[&3][0].to_bits(),
            sample_grad().context[&3][0].to_bits(),
            "delta bits must survive the wire"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RoundRequest::decode(&[1, 2, 3]).is_err());
        assert!(RoundReply::decode(&[0; 10]).is_err());
        // A reply claiming a huge result count must fail the ceiling
        // check instead of attempting the allocation.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u32_le(u32::MAX);
        let err = RoundReply::decode(&buf.freeze().to_vec()).unwrap_err();
        assert!(
            err.to_string().contains("max frame size"),
            "expected ceiling diagnostic, got {err}"
        );
        // Bad result tag.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u32_le(1);
        buf.put_u64_le(0);
        buf.put_u8(9);
        assert!(RoundReply::decode(&buf.freeze().to_vec()).is_err());
    }

    #[test]
    fn update_conversion_preserves_fields() {
        let upd = BucketUpdate {
            index: 11,
            grad: sample_grad(),
            mean_loss: 1.5,
            clipped: false,
        };
        let wire = WireUpdate::from(upd.clone());
        assert_eq!(wire.into_update(11), upd);
    }
}
