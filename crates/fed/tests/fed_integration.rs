//! End-to-end coordinator/worker tests against the real worker binary.
//!
//! Every test spawns actual `plp_fed_worker` processes (via the
//! `CARGO_BIN_EXE_` path Cargo exports to integration tests) and holds the
//! distributed run to the tentpole invariant: **bit-identical** parameters,
//! RDP ledger and ε versus the single-process trainer — through worker
//! faults, respawns, and coordinator crash/resume.

use std::path::PathBuf;

use plp_core::checkpoint::load_checkpoint;
use plp_core::faults::{FaultInjector, FaultPlan};
use plp_core::plp::CheckpointPolicy;
use plp_core::{
    resume_plp_with_executor, train_plp_resumable, train_plp_with_executor, Hyperparameters,
    TrainOptions,
};
use plp_data::checkin::UserId;
use plp_data::dataset::{TokenizedDataset, UserSequences};
use plp_fed::{FedConfig, FedExecutor, RetryPolicy};
use plp_obs::trace::{parse_dump_jsonl, stitch_chrome_trace, TraceConfig, TraceDump};
use plp_obs::Observer;
use plp_privacy::PrivacyBudget;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_plp_fed_worker"))
}

fn fed_config(workers: usize, retry: RetryPolicy) -> FedConfig {
    FedConfig {
        workers,
        worker_program: worker_exe(),
        worker_args: Vec::new(),
        retry,
    }
}

/// Same corpus shape as the core trainer tests: two token communities,
/// enough users for Poisson sampling to form several buckets per step.
fn tiny_dataset(num_users: usize) -> TokenizedDataset {
    let users = (0..num_users)
        .map(|i| {
            let base = if i % 2 == 0 { 0 } else { 8 };
            UserSequences {
                user: UserId(i as u32),
                sessions: vec![(0..12).map(|t| base + (t + i) % 6).collect()],
            }
        })
        .collect();
    TokenizedDataset {
        users,
        vocab_size: 16,
    }
}

fn fast_hp() -> Hyperparameters {
    Hyperparameters {
        embedding_dim: 8,
        negative_samples: 4,
        sampling_prob: 0.3,
        grouping_factor: 2,
        max_steps: 4,
        budget: PrivacyBudget {
            epsilon: 50.0,
            delta: 1e-3,
        },
        ..Hyperparameters::default()
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plp_fed_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fed_run_is_bit_identical_to_single_process() {
    let ds = tiny_dataset(30);
    let hp = fast_hp();
    let local = train_plp_resumable(41, &ds, None, &hp, &TrainOptions::default()).unwrap();

    for workers in [1, 3] {
        let mut exec = FedExecutor::new(fed_config(workers, RetryPolicy::default())).unwrap();
        let fed = train_plp_with_executor(41, &ds, None, &hp, &TrainOptions::default(), &mut exec)
            .unwrap();
        assert_eq!(
            fed.params, local.params,
            "{workers}-worker parameters diverged from single-process"
        );
        assert_eq!(fed.ledger, local.ledger, "{workers}-worker ledger diverged");
        assert_eq!(
            fed.summary.epsilon_spent.to_bits(),
            local.summary.epsilon_spent.to_bits(),
            "{workers}-worker ε diverged"
        );
        assert_eq!(fed.summary.steps, local.summary.steps);
        assert_eq!(fed.summary.stop_reason, local.summary.stop_reason);
    }
}

#[test]
fn fed_recovers_from_injected_worker_faults_bit_identically() {
    let ds = tiny_dataset(30);
    let hp = fast_hp();
    let reference = train_plp_resumable(42, &ds, None, &hp, &TrainOptions::default()).unwrap();

    // Every worker-level fault class at once, at rates high enough that
    // several fire over 4 steps × 2 workers. Stalls exceed the deadline so
    // they surface as stragglers; a generous retry budget means recovery
    // must always succeed, so the result must match the fault-free
    // single-process run bit for bit.
    let plan = FaultPlan {
        seed: 7,
        worker_stall_rate: 0.2,
        worker_stall_ms: 3_000,
        worker_exit_rate: 0.2,
        corrupt_frame_rate: 0.2,
        duplicate_reply_rate: 0.3,
        ..FaultPlan::quiet(0)
    };
    let retry = RetryPolicy {
        deadline_ms: 400,
        max_retries: 8,
        backoff_ms: 10,
    };
    let opts = TrainOptions {
        faults: FaultInjector::try_with_plan(plan).unwrap(),
        ..TrainOptions::default()
    };
    let mut exec = FedExecutor::new(fed_config(2, retry)).unwrap();
    let fed = train_plp_with_executor(42, &ds, None, &hp, &opts, &mut exec).unwrap();

    let stats = exec.total_stats;
    assert!(
        stats.stragglers + stats.respawns + stats.corrupt_frames + stats.duplicates > 0,
        "the drill proved nothing: no injected fault fired ({stats:?})"
    );
    assert_eq!(stats.dropped_buckets, 0, "recovery should never drop here");
    assert_eq!(fed.params, reference.params, "recovery changed the bits");
    assert_eq!(fed.ledger, reference.ledger);
    assert_eq!(
        fed.summary.epsilon_spent.to_bits(),
        reference.summary.epsilon_spent.to_bits()
    );
    assert_eq!(fed.summary.steps, reference.summary.steps);
}

#[test]
fn exhausted_retries_drop_buckets_with_dp_safe_semantics() {
    let ds = tiny_dataset(30);
    let hp = fast_hp();

    // Fed run where every worker exits every round and there is no retry
    // budget: all buckets are dropped. The DP-equivalent local reference
    // is a run where every delta is poisoned non-finite — both reduce to
    // "every bucket skipped", and the skipped-bucket semantics (fixed
    // q·W/λ denominator, unchanged σ and RDP charge) make the two runs
    // bit-identical in parameters, ledger and ε.
    let drop_all = FaultPlan {
        seed: 9,
        worker_exit_rate: 1.0,
        ..FaultPlan::quiet(0)
    };
    let skip_all = FaultPlan {
        seed: 9,
        nan_delta_rate: 1.0,
        ..FaultPlan::quiet(0)
    };
    let retry = RetryPolicy {
        deadline_ms: 2_000,
        max_retries: 0,
        backoff_ms: 1,
    };
    let fed_opts = TrainOptions {
        faults: FaultInjector::try_with_plan(drop_all).unwrap(),
        ..TrainOptions::default()
    };
    let local_opts = TrainOptions {
        faults: FaultInjector::try_with_plan(skip_all).unwrap(),
        ..TrainOptions::default()
    };
    let mut exec = FedExecutor::new(fed_config(2, retry)).unwrap();
    let fed = train_plp_with_executor(43, &ds, None, &hp, &fed_opts, &mut exec).unwrap();
    let local = train_plp_resumable(43, &ds, None, &hp, &local_opts).unwrap();

    assert!(exec.total_stats.dropped_buckets > 0, "nothing was dropped");
    assert_eq!(fed.params, local.params);
    assert_eq!(fed.ledger, local.ledger);
    assert_eq!(
        fed.summary.epsilon_spent.to_bits(),
        local.summary.epsilon_spent.to_bits()
    );
    assert!(fed.params.all_finite());
    let fed_skips: Vec<usize> = fed.telemetry.iter().map(|t| t.skipped_buckets).collect();
    let local_skips: Vec<usize> = local.telemetry.iter().map(|t| t.skipped_buckets).collect();
    assert_eq!(fed_skips, local_skips, "drops must account as skips");
    assert!(fed_skips.iter().sum::<usize>() > 0);
}

/// The acceptance drill for cross-process tracing: a traced 2-worker
/// federated run must stay bit-identical to the untraced single-process
/// reference, and the coordinator + worker flight-recorder dumps must
/// stitch into one Chrome/Perfetto trace in which worker round spans are
/// parented under coordinator send spans across the pipe.
#[test]
fn traced_fed_round_stitches_into_one_perfetto_trace_without_moving_bits() {
    let ds = tiny_dataset(30);
    let hp = fast_hp();
    let reference = train_plp_resumable(45, &ds, None, &hp, &TrainOptions::default()).unwrap();

    let dir = scratch_dir("trace");
    let opts = TrainOptions {
        observer: Observer::new("fed-trace-test"),
        ..TrainOptions::default()
    };
    let tracer = opts
        .observer
        .attach_tracer(
            TraceConfig::named("coordinator").dump_to(dir.join("trace_coordinator.jsonl")),
        )
        .unwrap();
    let traced = {
        let mut exec = FedExecutor::new(fed_config(2, RetryPolicy::default())).unwrap();
        train_plp_with_executor(45, &ds, None, &hp, &opts, &mut exec).unwrap()
        // The executor drops here; its shutdown grace period lets both
        // workers flush their clean-exit flight-recorder dumps.
    };

    // Tracing must be invisible to the training bits.
    assert_eq!(traced.params, reference.params, "tracing moved the params");
    assert_eq!(traced.ledger, reference.ledger, "tracing moved the ledger");
    assert_eq!(
        traced.summary.epsilon_spent.to_bits(),
        reference.summary.epsilon_spent.to_bits(),
        "tracing moved ε"
    );
    assert_eq!(traced.summary.steps, reference.summary.steps);

    // Coordinator dump first: it is the stitch anchor.
    tracer
        .dump_to(tracer.dump_path().unwrap(), "test_complete")
        .unwrap();
    let mut dumps: Vec<TraceDump> = vec![parse_dump_jsonl(
        &std::fs::read_to_string(dir.join("trace_coordinator.jsonl")).unwrap(),
    )
    .unwrap()];
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        if name.starts_with("trace_worker_") {
            dumps.push(parse_dump_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap());
        }
    }
    assert!(
        dumps.len() >= 3,
        "need coordinator + 2 worker dumps, found {}",
        dumps.len()
    );
    let pids: std::collections::BTreeSet<u64> = dumps.iter().map(|d| d.pid).collect();
    assert_eq!(
        pids.len(),
        dumps.len(),
        "each dump must come from its own process"
    );

    // One full round covered: the coordinator recorded a fed_round span and
    // a fed_send per worker dispatch; every worker parented its round span
    // under the matching fed_send span id — across the process boundary.
    let coord = &dumps[0];
    assert!(coord.records.iter().any(|r| r.name == "fed_round"));
    let send_spans: std::collections::BTreeSet<u64> = coord
        .records
        .iter()
        .filter(|r| r.name == "fed_send")
        .map(|r| r.span_id)
        .collect();
    assert!(
        !send_spans.is_empty(),
        "coordinator recorded no fed_send spans"
    );
    for worker in &dumps[1..] {
        let rounds: Vec<_> = worker
            .records
            .iter()
            .filter(|r| r.name == "fed_worker_round")
            .collect();
        assert!(
            !rounds.is_empty(),
            "worker {} recorded no round spans",
            worker.pid
        );
        assert!(
            rounds.iter().all(|r| send_spans.contains(&r.parent_id)),
            "worker {} round spans not parented under coordinator sends",
            worker.pid
        );
        assert!(
            worker.records.iter().any(|r| r.name == "fed_bucket"),
            "worker {} recorded no bucket spans",
            worker.pid
        );
    }

    // The stitched export is one Chrome/Perfetto JSON with flow events
    // joining the coordinator sends to the worker rounds.
    let stitched = stitch_chrome_trace(&dumps);
    assert!(stitched.contains("\"traceEvents\""));
    assert!(
        stitched.contains("fed_pipe"),
        "missing cross-pipe flow events"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_crash_resumes_bit_identically_with_fresh_workers() {
    let ds = tiny_dataset(30);
    let hp = fast_hp();
    let reference = train_plp_resumable(44, &ds, None, &hp, &TrainOptions::default()).unwrap();

    let dir = scratch_dir("resume");
    let ckpt_path = dir.join("fed.plpc");
    let halted_opts = TrainOptions {
        checkpoint: Some(CheckpointPolicy {
            path: ckpt_path.clone(),
            every: 1,
        }),
        halt_after: Some(2),
        ..TrainOptions::default()
    };
    // "Coordinator crash": the halted run's executor (and its worker
    // fleet) is dropped with the run mid-flight.
    {
        let mut exec = FedExecutor::new(fed_config(2, RetryPolicy::default())).unwrap();
        let halted = train_plp_with_executor(44, &ds, None, &hp, &halted_opts, &mut exec).unwrap();
        assert_eq!(halted.summary.steps, 2);
    }

    // A brand-new coordinator restores the ordinary v2 checkpoint and
    // finishes the run on a brand-new worker fleet.
    let ckpt = load_checkpoint(&ckpt_path).unwrap();
    let mut exec = FedExecutor::new(fed_config(2, RetryPolicy::default())).unwrap();
    let resumed =
        resume_plp_with_executor(ckpt, &ds, None, &hp, &TrainOptions::default(), &mut exec)
            .unwrap();

    assert_eq!(resumed.params, reference.params, "resume changed the bits");
    assert_eq!(resumed.ledger, reference.ledger);
    assert_eq!(
        resumed.summary.epsilon_spent.to_bits(),
        reference.summary.epsilon_spent.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}
