//! Data grouping — the paper's key contribution (§4.1).
//!
//! "Our data grouping technique agglomerates the data of multiple users into
//! buckets H. Given a grouping factor λ, users (and their entire data) are
//! randomly assigned to buckets such that each bucket contains λ users."
//!
//! Two strategies are implemented, mirroring the paper:
//! * [`GroupingStrategy::Random`] — the default (the paper found no
//!   statistically significant benefit from the alternative),
//! * [`GroupingStrategy::EqualFrequency`] — buckets balanced by record
//!   count, "while ensuring that the data records of each user are not split
//!   into multiple buckets".
//!
//! [`group_data_split`] implements the ω > 1 ablation of §4.2 (Case 2),
//! where a user's data is divided across ω buckets and the Gaussian noise
//! must be scaled by ω.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::TokenizedDataset;
use crate::error::DataError;

/// How sampled users are packed into buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingStrategy {
    /// Shuffle users and cut into consecutive groups of λ.
    #[default]
    Random,
    /// Greedy balanced packing by record count (longest-processing-time):
    /// users sorted by activity descending, each placed into the currently
    /// lightest bucket. Users are never split.
    EqualFrequency,
}

/// One training bucket `d_h`: the users it holds and their concatenated
/// token array (the layout `generateBatches` consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Indices (into the tokenized dataset's user list) of members.
    pub user_indices: Vec<usize>,
    /// The bucket's data as a single token array.
    pub tokens: Vec<usize>,
}

impl Bucket {
    /// Number of tokens in the bucket.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` iff the bucket holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Packs the sampled users into buckets of `lambda` users each
/// (Algorithm 1, line 6). The last bucket may hold fewer users when the
/// Poisson sample size is not a multiple of λ.
///
/// Every user's data lands in exactly one bucket (ω = 1), which is the
/// precondition for the sensitivity bound `S_GSQ ≤ C` of §4.2 Case 1.
///
/// # Errors
/// `lambda` must be ≥ 1 and every sampled index must be in range.
pub fn group_data<R: Rng + ?Sized>(
    rng: &mut R,
    sampled: &[usize],
    dataset: &TokenizedDataset,
    lambda: usize,
    strategy: GroupingStrategy,
) -> Result<Vec<Bucket>, DataError> {
    if lambda == 0 {
        return Err(DataError::BadConfig {
            name: "lambda",
            expected: ">= 1",
        });
    }
    for &u in sampled {
        if u >= dataset.num_users() {
            return Err(DataError::UnknownUser { user: u as u32 });
        }
    }
    if sampled.is_empty() {
        return Ok(Vec::new());
    }
    let assignments: Vec<Vec<usize>> = match strategy {
        GroupingStrategy::Random => {
            let mut order = sampled.to_vec();
            order.shuffle(rng);
            order.chunks(lambda).map(|c| c.to_vec()).collect()
        }
        GroupingStrategy::EqualFrequency => {
            let num_buckets = sampled.len().div_ceil(lambda);
            let mut by_size: Vec<usize> = sampled.to_vec();
            by_size.sort_by_key(|&u| std::cmp::Reverse(dataset.users[u].num_tokens()));
            let mut buckets: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new()); num_buckets];
            for u in by_size {
                // Lightest bucket that still has room; fall back to the
                // lightest overall if all are nominally full.
                let target = buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, members))| members.len() < lambda)
                    .min_by_key(|(_, (load, _))| *load)
                    .map(|(i, _)| i)
                    .unwrap_or_else(|| {
                        buckets
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (load, _))| *load)
                            .map(|(i, _)| i)
                            .expect("num_buckets >= 1")
                    });
                buckets[target].0 += dataset.users[u].num_tokens();
                buckets[target].1.push(u);
            }
            buckets
                .into_iter()
                .map(|(_, members)| members)
                .filter(|m| !m.is_empty())
                .collect()
        }
    };
    Ok(assignments
        .into_iter()
        .map(|user_indices| {
            let tokens = user_indices
                .iter()
                .flat_map(|&u| dataset.users[u].flattened())
                .collect();
            Bucket {
                user_indices,
                tokens,
            }
        })
        .collect())
}

/// The ω > 1 variant of §4.2 Case 2: each sampled user's token array is cut
/// into `omega` contiguous chunks assigned to `omega` *distinct* buckets.
/// The number of buckets is `ceil(|sampled| / lambda)` as in the ω = 1 case,
/// so each bucket holds about λ user-equivalents of data.
///
/// The caller is responsible for scaling the Gaussian noise variance by ω²
/// (the sensitivity of the sum query grows to ωC).
///
/// # Errors
/// `lambda` and `omega` must be ≥ 1, and there must be at least ω buckets
/// so a user's chunks can land in distinct buckets.
pub fn group_data_split<R: Rng + ?Sized>(
    rng: &mut R,
    sampled: &[usize],
    dataset: &TokenizedDataset,
    lambda: usize,
    omega: usize,
) -> Result<Vec<Bucket>, DataError> {
    if lambda == 0 {
        return Err(DataError::BadConfig {
            name: "lambda",
            expected: ">= 1",
        });
    }
    if omega == 0 {
        return Err(DataError::BadConfig {
            name: "omega",
            expected: ">= 1",
        });
    }
    if omega == 1 {
        return group_data(rng, sampled, dataset, lambda, GroupingStrategy::Random);
    }
    for &u in sampled {
        if u >= dataset.num_users() {
            return Err(DataError::UnknownUser { user: u as u32 });
        }
    }
    if sampled.is_empty() {
        return Ok(Vec::new());
    }
    let num_buckets = sampled.len().div_ceil(lambda).max(1);
    if num_buckets < omega {
        return Err(DataError::BadConfig {
            name: "omega",
            expected: "<= number of buckets (sampled users / lambda)",
        });
    }
    let mut buckets: Vec<Bucket> = (0..num_buckets)
        .map(|_| Bucket {
            user_indices: Vec::new(),
            tokens: Vec::new(),
        })
        .collect();
    let mut bucket_ids: Vec<usize> = (0..num_buckets).collect();
    for &u in sampled {
        let tokens = dataset.users[u].flattened();
        let chunk = tokens.len().div_ceil(omega).max(1);
        // Pick omega distinct buckets for this user's chunks.
        bucket_ids.shuffle(rng);
        for (piece, &b) in tokens.chunks(chunk).zip(bucket_ids.iter()).take(omega) {
            buckets[b].user_indices.push(u);
            buckets[b].tokens.extend_from_slice(piece);
        }
    }
    Ok(buckets
        .into_iter()
        .filter(|b| !b.user_indices.is_empty())
        .collect())
}

/// The realised split factor of a bucket assignment: the maximum number of
/// buckets any single user's data appears in. This is the ω of the privacy
/// analysis; noise must scale with the value *realised*, not the one
/// intended.
pub fn realized_split_factor(buckets: &[Bucket]) -> usize {
    use std::collections::HashMap;
    let mut count: HashMap<usize, usize> = HashMap::new();
    for b in buckets {
        let mut seen: Vec<usize> = b.user_indices.clone();
        seen.sort_unstable();
        seen.dedup();
        for u in seen {
            *count.entry(u).or_insert(0) += 1;
        }
    }
    count.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::UserId;
    use crate::dataset::UserSequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(sizes: &[usize]) -> TokenizedDataset {
        let users = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| UserSequences {
                user: UserId(i as u32),
                sessions: vec![(0..n).map(|t| (i * 100 + t) % 50).collect()],
            })
            .collect();
        TokenizedDataset {
            users,
            vocab_size: 50,
        }
    }

    #[test]
    fn random_grouping_partitions_users() {
        let ds = dataset(&[5, 5, 5, 5, 5, 5, 5]);
        let sampled = vec![0, 1, 2, 3, 4, 5, 6];
        let mut rng = StdRng::seed_from_u64(1);
        let buckets = group_data(&mut rng, &sampled, &ds, 2, GroupingStrategy::Random).unwrap();
        assert_eq!(buckets.len(), 4, "ceil(7/2)");
        let mut all: Vec<usize> = buckets
            .iter()
            .flat_map(|b| b.user_indices.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, sampled, "every user in exactly one bucket");
        assert_eq!(realized_split_factor(&buckets), 1);
        // Bucket token arrays are the concatenation of member data.
        for b in &buckets {
            let expected: usize = b
                .user_indices
                .iter()
                .map(|&u| ds.users[u].num_tokens())
                .sum();
            assert_eq!(b.len(), expected);
        }
    }

    #[test]
    fn lambda_one_is_per_user_buckets() {
        let ds = dataset(&[3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let buckets = group_data(&mut rng, &[0, 1, 2], &ds, 1, GroupingStrategy::Random).unwrap();
        assert_eq!(buckets.len(), 3);
        assert!(buckets.iter().all(|b| b.user_indices.len() == 1));
    }

    #[test]
    fn equal_frequency_balances_load() {
        // One heavy user and several light ones.
        let ds = dataset(&[100, 10, 10, 10, 10, 10]);
        let mut rng = StdRng::seed_from_u64(3);
        let buckets = group_data(
            &mut rng,
            &[0, 1, 2, 3, 4, 5],
            &ds,
            3,
            GroupingStrategy::EqualFrequency,
        )
        .unwrap();
        assert_eq!(buckets.len(), 2);
        let loads: Vec<usize> = buckets.iter().map(|b| b.len()).collect();
        // LPT puts the heavy user alone-ish: loads {100+10, 10*4} or better.
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        assert!(spread <= 100, "loads {loads:?}");
        // Users still never split.
        assert_eq!(realized_split_factor(&buckets), 1);
        let mut all: Vec<usize> = buckets
            .iter()
            .flat_map(|b| b.user_indices.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn grouping_validates_inputs() {
        let ds = dataset(&[3]);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(group_data(&mut rng, &[0], &ds, 0, GroupingStrategy::Random).is_err());
        assert!(group_data(&mut rng, &[5], &ds, 1, GroupingStrategy::Random).is_err());
        assert!(group_data(&mut rng, &[], &ds, 2, GroupingStrategy::Random)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn split_factor_two_spreads_users() {
        let ds = dataset(&[8, 8, 8, 8]);
        let mut rng = StdRng::seed_from_u64(5);
        let buckets = group_data_split(&mut rng, &[0, 1, 2, 3], &ds, 1, 2).unwrap();
        assert_eq!(realized_split_factor(&buckets), 2);
        // All tokens preserved.
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 32);
        // No bucket contains the same user twice.
        for b in &buckets {
            let mut v = b.user_indices.clone();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), b.user_indices.len());
        }
    }

    #[test]
    fn split_omega_one_delegates_to_plain_grouping() {
        let ds = dataset(&[4, 4]);
        let mut rng = StdRng::seed_from_u64(6);
        let buckets = group_data_split(&mut rng, &[0, 1], &ds, 2, 1).unwrap();
        assert_eq!(realized_split_factor(&buckets), 1);
    }

    #[test]
    fn split_requires_enough_buckets() {
        let ds = dataset(&[4, 4]);
        let mut rng = StdRng::seed_from_u64(7);
        // 2 users / lambda 2 => 1 bucket < omega 2.
        assert!(group_data_split(&mut rng, &[0, 1], &ds, 2, 2).is_err());
        assert!(group_data_split(&mut rng, &[0, 1], &ds, 0, 2).is_err());
        assert!(group_data_split(&mut rng, &[0, 1], &ds, 1, 0).is_err());
    }

    #[test]
    fn realized_split_factor_empty() {
        assert_eq!(realized_split_factor(&[]), 0);
    }

    #[test]
    fn fewer_sampled_users_than_lambda_forms_one_bucket() {
        // A thin Poisson draw (|sample| < λ) must still group cleanly:
        // everyone lands in the single, under-full bucket.
        let ds = dataset(&[4, 6, 2, 3, 5, 7, 8, 9]);
        for strategy in [GroupingStrategy::Random, GroupingStrategy::EqualFrequency] {
            let mut rng = StdRng::seed_from_u64(8);
            let buckets = group_data(&mut rng, &[2, 5, 6], &ds, 10, strategy).unwrap();
            assert_eq!(buckets.len(), 1, "{strategy:?}");
            let mut members = buckets[0].user_indices.clone();
            members.sort_unstable();
            assert_eq!(members, vec![2, 5, 6]);
            assert_eq!(
                buckets[0].len(),
                ds.users[2].num_tokens() + ds.users[5].num_tokens() + ds.users[6].num_tokens()
            );
            assert_eq!(realized_split_factor(&buckets), 1);
        }
    }

    #[test]
    fn lambda_one_equal_frequency_is_per_user_buckets() {
        let ds = dataset(&[3, 9, 1, 4]);
        let mut rng = StdRng::seed_from_u64(9);
        let buckets = group_data(
            &mut rng,
            &[0, 1, 2, 3],
            &ds,
            1,
            GroupingStrategy::EqualFrequency,
        )
        .unwrap();
        assert_eq!(buckets.len(), 4);
        assert!(buckets.iter().all(|b| b.user_indices.len() == 1));
        assert_eq!(realized_split_factor(&buckets), 1);
    }

    #[test]
    fn split_lambda_one_delegates_cleanly() {
        // λ = 1 with ω = 1 through the split entry point: per-user buckets.
        let ds = dataset(&[2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(10);
        let buckets = group_data_split(&mut rng, &[0, 1, 2], &ds, 1, 1).unwrap();
        assert_eq!(buckets.len(), 3);
        assert_eq!(realized_split_factor(&buckets), 1);
    }

    mod sensitivity_props {
        //! Property tests for the §4.2 Case 1 invariant: with ω = 1, every
        //! sampled user's data lands in exactly one bucket — the
        //! precondition for the sum query's sensitivity bound S_GSQ ≤ C.

        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn every_sampled_user_in_exactly_one_bucket(
                seed in 0u64..1000,
                num_users in 1usize..24,
                lambda in 1usize..9,
                strategy_pick in 0usize..2,
            ) {
                let sizes: Vec<usize> = (0..num_users).map(|i| 1 + (i * 7) % 12).collect();
                let ds = dataset(&sizes);
                // A deterministic strict subset exercises partial samples.
                let sampled: Vec<usize> =
                    (0..num_users).filter(|i| !(i + seed as usize).is_multiple_of(3)).collect();
                let strategy = if strategy_pick == 1 {
                    GroupingStrategy::EqualFrequency
                } else {
                    GroupingStrategy::Random
                };
                let mut rng = StdRng::seed_from_u64(seed);
                let buckets = group_data(&mut rng, &sampled, &ds, lambda, strategy).unwrap();
                // Exactly ω = 1: each sampled user appears once across all
                // buckets, unsampled users never.
                let mut appearances: Vec<usize> = buckets
                    .iter()
                    .flat_map(|b| b.user_indices.iter().copied())
                    .collect();
                appearances.sort_unstable();
                let mut expected = sampled.clone();
                expected.sort_unstable();
                prop_assert_eq!(appearances, expected);
                prop_assert!(realized_split_factor(&buckets) <= 1);
                // No bucket over λ members, and no empty buckets emitted.
                prop_assert!(buckets.iter().all(|b| !b.user_indices.is_empty()));
                prop_assert!(buckets.iter().all(|b| b.user_indices.len() <= lambda));
            }
        }
    }
}
