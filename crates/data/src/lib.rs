//! Check-in data substrate for Private Location Prediction.
//!
//! The paper trains on Foursquare check-ins from Tokyo (739,828 check-ins,
//! 4,602 users, 5,069 POIs after filtering — §5.1). That dataset is not
//! redistributable, so this crate provides both the *data model* a real
//! dataset would load into and a calibrated *synthetic generator*
//! ([`generator`]) reproducing the statistical properties the paper's
//! phenomena depend on (Zipf popularity, heavy-tailed user activity,
//! geographic clustering, 6-hour session structure).
//!
//! Pipeline, mirroring §5.1 "Experimental Settings":
//!
//! 1. [`checkin`] / [`dataset`] — raw `⟨user, location, time⟩` triples
//!    grouped per user,
//! 2. [`preprocess`] — iterated filtering (≥ 10 check-ins per user, ≥ 2
//!    distinct visitors per location) and bounding-box restriction,
//! 3. [`vocab`] — tokenisation of locations into `0..L` indices,
//! 4. [`session`] — segmentation into trajectories of at most six hours,
//! 5. [`split`] — held-out user selection (100 validation + 100 test users),
//! 6. [`window`] — symmetric skip-gram (target, context) pair extraction and
//!    batch generation,
//! 7. [`sampling`] — Poisson user sampling per training step (Algorithm 1,
//!    line 5),
//! 8. [`grouping`] — the paper's data-grouping contribution: packing λ users
//!    into buckets, with the split factor ω of §4.2,
//! 9. [`stats`] / [`io`] — dataset statistics and (de)serialisation.

pub mod checkin;
pub mod dataset;
pub mod error;
pub mod frame;
pub mod generator;
pub mod grouping;
pub mod io;
pub mod preprocess;
pub mod sampling;
pub mod session;
pub mod split;
pub mod stats;
pub mod vocab;
pub mod window;

pub use checkin::{CheckIn, GeoPoint, LocationId, Poi, Timestamp, UserId};
pub use dataset::{CheckInDataset, TokenizedDataset, UserHistory};
pub use error::DataError;
pub use generator::{GeneratorConfig, SyntheticGenerator};
pub use grouping::{Bucket, GroupingStrategy};
pub use vocab::Vocabulary;
