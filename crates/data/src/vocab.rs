//! Location vocabulary: the tokenisation step of §3.2 ("every location in P
//! is tokenized to a word in a vocabulary of size L = |P|").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::checkin::LocationId;
use crate::dataset::CheckInDataset;

/// A bijection between [`LocationId`]s and dense token indices `0..L`.
///
/// Token order is the sorted order of location ids, so a vocabulary built
/// from the same set of locations is always identical — important for
/// reproducibility and for sharing models between processes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    locations: Vec<LocationId>,
    #[serde(skip)]
    index: HashMap<LocationId, usize>,
}

impl Vocabulary {
    /// Builds a vocabulary from every location visited in `dataset`.
    pub fn build(dataset: &CheckInDataset) -> Self {
        let mut locations: Vec<LocationId> = dataset
            .users
            .iter()
            .flat_map(|u| u.checkins.iter().map(|c| c.location))
            .collect();
        locations.sort_unstable();
        locations.dedup();
        Self::from_locations(locations)
    }

    /// Builds a vocabulary from an explicit, possibly unsorted location list
    /// (duplicates are removed).
    pub fn from_locations(mut locations: Vec<LocationId>) -> Self {
        locations.sort_unstable();
        locations.dedup();
        let index = locations.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        Vocabulary { locations, index }
    }

    /// Rebuilds the lookup index after deserialisation (the map is not
    /// serialised; the sorted location list is the source of truth).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .locations
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i))
            .collect();
    }

    /// Vocabulary size `L`.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` iff the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The token index of `location`, if present.
    pub fn token(&self, location: LocationId) -> Option<usize> {
        if self.index.len() != self.locations.len() {
            // Deserialised without rebuild: fall back to binary search.
            return self.locations.binary_search(&location).ok();
        }
        self.index.get(&location).copied()
    }

    /// The location behind token `t`, if in range.
    pub fn location(&self, t: usize) -> Option<LocationId> {
        self.locations.get(t).copied()
    }

    /// All locations in token order.
    pub fn locations(&self) -> &[LocationId] {
        &self.locations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::CheckIn;

    #[test]
    fn build_is_sorted_and_deduped() {
        let cs = vec![
            CheckIn::new(1, 30, 0),
            CheckIn::new(1, 10, 1),
            CheckIn::new(2, 30, 2),
            CheckIn::new(2, 20, 3),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let v = Vocabulary::build(&ds);
        assert_eq!(v.len(), 3);
        assert_eq!(v.token(LocationId(10)), Some(0));
        assert_eq!(v.token(LocationId(20)), Some(1));
        assert_eq!(v.token(LocationId(30)), Some(2));
        assert_eq!(v.token(LocationId(99)), None);
    }

    #[test]
    fn token_location_round_trip() {
        let v = Vocabulary::from_locations(vec![LocationId(5), LocationId(1), LocationId(5)]);
        assert_eq!(v.len(), 2);
        for t in 0..v.len() {
            let l = v.location(t).unwrap();
            assert_eq!(v.token(l), Some(t));
        }
        assert_eq!(v.location(2), None);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let v = Vocabulary::from_locations(vec![LocationId(7), LocationId(3)]);
        let s = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&s).unwrap();
        // Works via binary-search fallback even before rebuilding.
        assert_eq!(back.token(LocationId(7)), Some(1));
        back.rebuild_index();
        assert_eq!(back.token(LocationId(3)), Some(0));
        assert_eq!(back.locations(), v.locations());
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::from_locations(vec![]);
        assert!(v.is_empty());
        assert_eq!(v.token(LocationId(0)), None);
        assert_eq!(v.location(0), None);
    }
}
