//! Synthetic Foursquare-Tokyo check-in generator.
//!
//! The paper's dataset (739,828 check-ins / 4,602 users / 5,069 POIs inside
//! a 35 × 25 km² Tokyo bounding box, 22 months — §5.1) is not
//! redistributable, so this module synthesises a dataset calibrated to the
//! same statistical profile. The generator reproduces the properties every
//! experiment depends on:
//!
//! * **Zipf location popularity** — "the frequency of check-ins of users at
//!   locations follows the Zipf's law" (§4.1): POI choice inside a
//!   neighbourhood is Zipf-distributed.
//! * **Heavy-tailed user activity** — per-user check-in counts are
//!   log-normal with a hard floor (the post-filter minimum of 10), which is
//!   what makes *user-level* DP materially stronger than record-level.
//! * **Geographic clustering + sequential structure** — POIs belong to
//!   neighbourhood clusters; users move among a few favourite clusters with
//!   sticky transitions, so consecutive check-ins are highly predictable —
//!   the signal skip-gram embeddings learn.
//! * **Session structure** — visits arrive in bursts that respect the
//!   six-hour trajectory cap used in evaluation.
//!
//! Everything is driven by one seeded RNG: the same seed yields the same
//! dataset byte-for-byte.

use rand::{Rng, RngExt};

use plp_linalg::sample::{NormalSampler, Zipf};

use crate::checkin::{BoundingBox, CheckIn, GeoPoint, LocationId, Poi};
use crate::dataset::CheckInDataset;
use crate::error::DataError;

/// Configuration of the synthetic generator. Defaults reproduce the paper's
/// dataset profile; [`GeneratorConfig::small`] is a fast profile for tests
/// and CI-scale benches.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of users to synthesise.
    pub num_users: usize,
    /// Number of POIs.
    pub num_locations: usize,
    /// Target *total* check-ins (achieved in expectation).
    pub target_checkins: usize,
    /// Number of geographic neighbourhood clusters.
    pub num_clusters: usize,
    /// Zipf exponent for POI choice within a cluster.
    pub zipf_exponent: f64,
    /// Zipf exponent for cluster attractiveness (how unevenly users favour
    /// neighbourhoods).
    pub cluster_zipf_exponent: f64,
    /// Probability of staying in the current cluster at each step.
    pub cluster_stay_prob: f64,
    /// Probability of an excursion to a uniformly random cluster.
    pub explore_prob: f64,
    /// Number of favourite clusters per user.
    pub favorites_per_user: usize,
    /// Minimum check-ins per user (the post-filter floor; paper: 10).
    pub min_checkins_per_user: usize,
    /// Maximum check-ins per user (clamps the log-normal tail).
    pub max_checkins_per_user: usize,
    /// Geographic region.
    pub bbox: BoundingBox,
    /// First possible check-in timestamp (Unix seconds).
    pub start_timestamp: i64,
    /// Observation window length in seconds (paper: 22 months).
    pub duration_secs: i64,
    /// Standard deviation of POI offsets from their cluster centre, in
    /// degrees (~0.005 ≈ 550 m).
    pub poi_scatter_deg: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_users: 4602,
            num_locations: 5069,
            target_checkins: 739_828,
            num_clusters: 40,
            zipf_exponent: 1.0,
            cluster_zipf_exponent: 0.6,
            cluster_stay_prob: 0.85,
            explore_prob: 0.03,
            favorites_per_user: 2,
            min_checkins_per_user: 10,
            max_checkins_per_user: 4000,
            bbox: BoundingBox::tokyo(),
            // 2012-04-01 00:00:00 UTC, 22 months ≈ 669 days.
            start_timestamp: 1_333_238_400,
            duration_secs: 669 * 24 * 3600,
            poi_scatter_deg: 0.005,
        }
    }
}

impl GeneratorConfig {
    /// A fast profile (~300 users, 400 POIs, ~15k check-ins) preserving the
    /// same distributional shape; used by unit tests and scaled benches.
    pub fn small() -> Self {
        GeneratorConfig {
            num_users: 300,
            num_locations: 400,
            target_checkins: 15_000,
            num_clusters: 12,
            ..GeneratorConfig::default()
        }
    }

    /// A medium profile (~1200 users, 600 POIs, ~120k check-ins) for the
    /// figure harnesses: large enough for stable accuracy trends, small
    /// enough to sweep many configurations.
    ///
    /// The location count preserves the paper's per-coordinate
    /// signal-to-noise ratio at the smaller population: with m = qN
    /// sampled users the noise in the averaged update scales as
    /// `σC·λ/m` per coordinate while a clipped bucket delta spreads over
    /// `O(√(L·dim))` coordinates, so SNR ∝ `m / (λσ√(L·dim))`. Matching
    /// the paper's N = 4602, L = 5069 at N = 1200 requires L ≈ 600.
    pub fn medium() -> Self {
        GeneratorConfig {
            num_users: 1200,
            num_locations: 600,
            target_checkins: 120_000,
            num_clusters: 10,
            ..GeneratorConfig::default()
        }
    }

    /// A production-scale profile: a ~100k-location city across 400
    /// neighbourhood clusters. This is the vocabulary regime the
    /// million-location serving work targets — big enough that an
    /// exhaustive per-query scan over all locations is the bottleneck
    /// and the IVF index has real cell structure to exploit, while the
    /// user count stays modest so *world* construction (POIs, clusters)
    /// dominates and check-in synthesis remains bench-friendly.
    pub fn city() -> Self {
        GeneratorConfig {
            num_users: 2000,
            num_locations: 100_000,
            target_checkins: 200_000,
            num_clusters: 400,
            ..GeneratorConfig::default()
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    /// Returns [`DataError::BadConfig`] naming the first bad field.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.num_users == 0 {
            return Err(DataError::BadConfig {
                name: "num_users",
                expected: ">= 1",
            });
        }
        if self.num_locations == 0 {
            return Err(DataError::BadConfig {
                name: "num_locations",
                expected: ">= 1",
            });
        }
        if self.num_clusters == 0 || self.num_clusters > self.num_locations {
            return Err(DataError::BadConfig {
                name: "num_clusters",
                expected: "in [1, num_locations]",
            });
        }
        if !(0.0..=1.0).contains(&self.cluster_stay_prob) {
            return Err(DataError::BadConfig {
                name: "cluster_stay_prob",
                expected: "in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.explore_prob) {
            return Err(DataError::BadConfig {
                name: "explore_prob",
                expected: "in [0, 1]",
            });
        }
        if self.favorites_per_user == 0 {
            return Err(DataError::BadConfig {
                name: "favorites_per_user",
                expected: ">= 1",
            });
        }
        if self.min_checkins_per_user == 0
            || self.max_checkins_per_user < self.min_checkins_per_user
        {
            return Err(DataError::BadConfig {
                name: "min/max_checkins_per_user",
                expected: "1 <= min <= max",
            });
        }
        if self.duration_secs <= 0 {
            return Err(DataError::BadConfig {
                name: "duration_secs",
                expected: "> 0",
            });
        }
        Ok(())
    }
}

/// The generator: holds the world model (clusters, POIs, distributions)
/// built from a [`GeneratorConfig`].
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: GeneratorConfig,
    /// Cluster index of each POI.
    poi_cluster: Vec<usize>,
    /// POIs of each cluster, ordered by within-cluster popularity rank.
    cluster_pois: Vec<Vec<usize>>,
    /// Within-cluster POI popularity distribution, one per cluster,
    /// precomputed so sampling a check-in is O(log cluster) instead of
    /// rebuilding the O(cluster) Zipf CDF per visit. Construction draws
    /// nothing from the RNG, so datasets are byte-identical to the
    /// rebuild-per-call behaviour.
    cluster_poi_dist: Vec<Zipf>,
    /// POI coordinates.
    pois: Vec<Poi>,
    /// Cluster attractiveness distribution.
    cluster_dist: Zipf,
}

impl SyntheticGenerator {
    /// Builds the world model (cluster geography, POI placement).
    ///
    /// # Errors
    /// Propagates configuration validation failures.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: GeneratorConfig) -> Result<Self, DataError> {
        config.validate()?;
        let bbox = config.bbox;
        let lat_span = bbox.north - bbox.south;
        let lon_span = bbox.east - bbox.west;
        // Cluster centres, kept off the border so POI scatter stays inside.
        let margin = 0.05;
        let centers: Vec<GeoPoint> = (0..config.num_clusters)
            .map(|_| GeoPoint {
                lat: bbox.south + lat_span * (margin + (1.0 - 2.0 * margin) * rng.random::<f64>()),
                lon: bbox.west + lon_span * (margin + (1.0 - 2.0 * margin) * rng.random::<f64>()),
            })
            .collect();

        let cluster_dist = Zipf::new(config.num_clusters, config.cluster_zipf_exponent).ok_or(
            DataError::BadConfig {
                name: "cluster_zipf_exponent",
                expected: ">= 0",
            },
        )?;

        // Assign POIs to clusters (attractive clusters get more POIs) and
        // scatter them around the centre.
        let mut normal = NormalSampler::new();
        let mut poi_cluster = Vec::with_capacity(config.num_locations);
        let mut cluster_pois: Vec<Vec<usize>> = vec![Vec::new(); config.num_clusters];
        let mut pois = Vec::with_capacity(config.num_locations);
        for p in 0..config.num_locations {
            // Guarantee every cluster owns at least one POI, then sample.
            let c = if p < config.num_clusters {
                p
            } else {
                cluster_dist.sample(rng)
            };
            poi_cluster.push(c);
            cluster_pois[c].push(p);
            let center = centers[c];
            let point = GeoPoint {
                lat: (center.lat + normal.sample_scaled(rng, config.poi_scatter_deg))
                    .clamp(bbox.south, bbox.north),
                lon: (center.lon + normal.sample_scaled(rng, config.poi_scatter_deg))
                    .clamp(bbox.west, bbox.east),
            };
            pois.push(Poi {
                id: LocationId(p as u32),
                point,
            });
        }

        let cluster_poi_dist = cluster_pois
            .iter()
            .map(|members| {
                debug_assert!(!members.is_empty(), "every cluster owns at least one POI");
                Zipf::new(members.len(), config.zipf_exponent).ok_or(DataError::BadConfig {
                    name: "zipf_exponent",
                    expected: ">= 0",
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(SyntheticGenerator {
            config,
            poi_cluster,
            cluster_pois,
            cluster_poi_dist,
            pois,
            cluster_dist,
        })
    }

    /// The world's POIs.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// The cluster a POI belongs to.
    pub fn cluster_of(&self, poi: usize) -> Option<usize> {
        self.poi_cluster.get(poi).copied()
    }

    /// Generates the full dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CheckInDataset {
        let cfg = &self.config;
        let mut normal = NormalSampler::new();
        // Log-normal per-user activity calibrated so the mean hits
        // target_checkins / num_users: mean(LN) = exp(mu + s²/2).
        let mean_target = (cfg.target_checkins as f64 / cfg.num_users as f64)
            .max(cfg.min_checkins_per_user as f64);
        let s = 0.9_f64;
        let mu = mean_target.ln() - 0.5 * s * s;

        let mut checkins = Vec::with_capacity(cfg.target_checkins + cfg.target_checkins / 8);
        for user in 0..cfg.num_users {
            let raw = (mu + s * normal.sample(rng)).exp();
            let count =
                (raw.round() as usize).clamp(cfg.min_checkins_per_user, cfg.max_checkins_per_user);
            let favorites = self.pick_favorites(rng);
            self.generate_user(rng, user as u32, count, &favorites, &mut checkins);
        }
        CheckInDataset::from_checkins(self.pois.clone(), checkins)
    }

    fn pick_favorites<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let want = self.config.favorites_per_user.min(self.config.num_clusters);
        let mut favorites = Vec::with_capacity(want);
        // Rejection-sample distinct clusters from the attractiveness
        // distribution; favourites are shared across users because they are
        // drawn from the same skewed global distribution.
        let mut guard = 0;
        while favorites.len() < want && guard < 10_000 {
            let c = self.cluster_dist.sample(rng);
            if !favorites.contains(&c) {
                favorites.push(c);
            }
            guard += 1;
        }
        while favorites.len() < want {
            // Degenerate configs (e.g. huge exponent): fill deterministically.
            for c in 0..self.config.num_clusters {
                if !favorites.contains(&c) {
                    favorites.push(c);
                    break;
                }
            }
        }
        favorites
    }

    fn generate_user<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        user: u32,
        count: usize,
        favorites: &[usize],
        out: &mut Vec<CheckIn>,
    ) {
        let cfg = &self.config;
        let mut remaining = count;
        // Sessions of 2..=8 visits; starts uniform over the window, sorted.
        let mut session_sizes = Vec::new();
        while remaining > 0 {
            let size = rng.random_range(2..=8).min(remaining);
            session_sizes.push(size);
            remaining -= size;
        }
        let mut starts: Vec<i64> = (0..session_sizes.len())
            .map(|_| {
                cfg.start_timestamp
                    + (rng.random::<f64>() * (cfg.duration_secs - 6 * 3600).max(1) as f64) as i64
            })
            .collect();
        starts.sort_unstable();

        for (size, start) in session_sizes.into_iter().zip(starts) {
            let mut t = start;
            // Each session starts from a favourite neighbourhood.
            let mut cluster = favorites[rng.random_range(0..favorites.len())];
            for step in 0..size {
                if step > 0 {
                    let r: f64 = rng.random();
                    if r < cfg.explore_prob {
                        cluster = rng.random_range(0..cfg.num_clusters);
                    } else if r >= cfg.explore_prob + cfg.cluster_stay_prob {
                        cluster = favorites[rng.random_range(0..favorites.len())];
                    }
                    // 10–90 minutes between visits keeps sessions within the
                    // six-hour trajectory cap for up to 8 visits.
                    t += rng.random_range(600..=5400);
                }
                let poi = self.sample_poi_in_cluster(rng, cluster);
                out.push(CheckIn::new(user, poi as u32, t));
            }
        }
    }

    fn sample_poi_in_cluster<R: Rng + ?Sized>(&self, rng: &mut R, cluster: usize) -> usize {
        // Zipf over the cluster's POIs by rank, from the table built at
        // construction (same distribution, same RNG draw sequence).
        self.cluster_pois[cluster][self.cluster_poi_dist[cluster].sample(rng)]
    }

    /// Convenience: build the world and generate in one call from a seed.
    ///
    /// # Errors
    /// Propagates configuration validation failures.
    pub fn generate_with_seed(
        config: GeneratorConfig,
        seed: u64,
    ) -> Result<CheckInDataset, DataError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticGenerator::new(&mut rng, config)?;
        Ok(g.generate(&mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_profile_matches_targets() {
        let cfg = GeneratorConfig::small();
        let ds = SyntheticGenerator::generate_with_seed(cfg.clone(), 42).unwrap();
        let s = dataset_stats(&ds);
        assert_eq!(s.num_users, cfg.num_users);
        assert!(s.num_locations <= cfg.num_locations);
        // Total within 30% of target (log-normal sampling noise).
        let ratio = s.num_checkins as f64 / cfg.target_checkins as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
        assert!(s.min_checkins_per_user >= cfg.min_checkins_per_user);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = SyntheticGenerator::generate_with_seed(GeneratorConfig::small(), 7).unwrap();
        let b = SyntheticGenerator::generate_with_seed(GeneratorConfig::small(), 7).unwrap();
        assert_eq!(a, b);
        let c = SyntheticGenerator::generate_with_seed(GeneratorConfig::small(), 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pois_lie_inside_the_bbox() {
        let cfg = GeneratorConfig::small();
        let ds = SyntheticGenerator::generate_with_seed(cfg.clone(), 3).unwrap();
        assert!(ds.pois.iter().all(|p| cfg.bbox.contains(&p.point)));
    }

    #[test]
    fn popularity_is_skewed() {
        let ds = SyntheticGenerator::generate_with_seed(GeneratorConfig::small(), 11).unwrap();
        let s = dataset_stats(&ds);
        assert!(s.location_gini > 0.4, "gini {}", s.location_gini);
        // Density in the sparse regime the paper discusses (well under 10%).
        assert!(s.density < 0.12, "density {}", s.density);
    }

    #[test]
    fn timestamps_lie_in_window_and_histories_are_sorted() {
        let cfg = GeneratorConfig::small();
        let ds = SyntheticGenerator::generate_with_seed(cfg.clone(), 5).unwrap();
        ds.validate().unwrap();
        let lo = cfg.start_timestamp;
        let hi = cfg.start_timestamp + cfg.duration_secs + 8 * 5400;
        for u in &ds.users {
            for c in &u.checkins {
                assert!(c.timestamp >= lo && c.timestamp <= hi);
            }
        }
    }

    #[test]
    fn sequential_structure_exists() {
        // Consecutive check-ins should stay in the same cluster far more
        // often than chance — this is the signal skip-gram learns.
        let mut rng = StdRng::seed_from_u64(17);
        let g = SyntheticGenerator::new(&mut rng, GeneratorConfig::small()).unwrap();
        let ds = g.generate(&mut rng);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in &ds.users {
            for w in u.checkins.windows(2) {
                // Only count transitions within a session (< 2h apart).
                if w[1].timestamp - w[0].timestamp <= 2 * 3600 {
                    total += 1;
                    let a = g.cluster_of(w[0].location.0 as usize).unwrap();
                    let b = g.cluster_of(w[1].location.0 as usize).unwrap();
                    if a == b {
                        same += 1;
                    }
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.5, "same-cluster transition fraction {frac}");
    }

    #[test]
    fn user_activity_is_heavy_tailed() {
        let ds = SyntheticGenerator::generate_with_seed(GeneratorConfig::small(), 23).unwrap();
        let s = dataset_stats(&ds);
        assert!(
            s.max_checkins_per_user as f64 > 4.0 * s.median_checkins_per_user,
            "max {} median {}",
            s.max_checkins_per_user,
            s.median_checkins_per_user
        );
    }

    #[test]
    fn city_profile_builds_a_100k_location_world() {
        let cfg = GeneratorConfig::city();
        cfg.validate().unwrap();
        assert!(cfg.num_locations >= 100_000);
        let mut rng = StdRng::seed_from_u64(9);
        let g = SyntheticGenerator::new(&mut rng, cfg.clone()).unwrap();
        assert_eq!(g.pois().len(), cfg.num_locations);
        assert!(cfg.bbox.contains(&g.pois()[cfg.num_locations - 1].point));
        // Every POI belongs to a cluster and every cluster is non-empty.
        let mut counts = vec![0usize; cfg.num_clusters];
        for p in 0..cfg.num_locations {
            counts[g.cluster_of(p).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&n| n > 0));
    }

    #[test]
    fn world_build_is_seed_deterministic_at_city_scale() {
        let mut a_rng = StdRng::seed_from_u64(31);
        let mut b_rng = StdRng::seed_from_u64(31);
        let a = SyntheticGenerator::new(&mut a_rng, GeneratorConfig::city()).unwrap();
        let b = SyntheticGenerator::new(&mut b_rng, GeneratorConfig::city()).unwrap();
        assert_eq!(a.pois(), b.pois());
        assert!((0..100_000).all(|p| a.cluster_of(p) == b.cluster_of(p)));
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        let ok = GeneratorConfig::small();
        assert!(ok.validate().is_ok());
        let mut c = ok.clone();
        c.num_users = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.num_clusters = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.num_clusters = c.num_locations + 1;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.cluster_stay_prob = 1.5;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.favorites_per_user = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.max_checkins_per_user = 1;
        c.min_checkins_per_user = 10;
        assert!(c.validate().is_err());
        let mut c = ok;
        c.duration_secs = 0;
        assert!(c.validate().is_err());
    }
}
