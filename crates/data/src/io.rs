//! Persistence: JSON, CSV and a compact binary codec for check-in datasets.
//!
//! Real deployments would load Foursquare-style CSV exports; experiments
//! snapshot generated datasets in the binary format so every figure harness
//! sees byte-identical input.

use std::fs;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::checkin::{CheckIn, GeoPoint, LocationId, Poi};
use crate::dataset::CheckInDataset;
use crate::error::DataError;

/// Magic bytes + version prefix of the binary snapshot format.
const MAGIC: &[u8; 4] = b"PLPD";
const VERSION: u8 = 1;

/// Serialises the dataset to pretty JSON at `path`.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_json(dataset: &CheckInDataset, path: &Path) -> Result<(), DataError> {
    let json = serde_json::to_string_pretty(dataset).map_err(|e| DataError::Invalid {
        what: format!("json encode: {e}"),
    })?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a dataset from JSON at `path`.
///
/// # Errors
/// Propagates I/O and decode failures.
pub fn load_json(path: &Path) -> Result<CheckInDataset, DataError> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| DataError::Invalid {
        what: format!("json decode: {e}"),
    })
}

/// Writes check-ins as CSV lines `user,location,timestamp` (with header).
pub fn checkins_to_csv(dataset: &CheckInDataset) -> String {
    let mut out = String::from("user,location,timestamp\n");
    for u in &dataset.users {
        for c in &u.checkins {
            out.push_str(&format!("{},{},{}\n", c.user.0, c.location.0, c.timestamp));
        }
    }
    out
}

/// Parses CSV produced by [`checkins_to_csv`] (header optional).
///
/// # Errors
/// Returns [`DataError::Parse`] with a 1-based line number on malformed
/// input.
pub fn checkins_from_csv(text: &str) -> Result<Vec<CheckIn>, DataError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (i == 0 && line.starts_with("user")) {
            continue;
        }
        let mut parts = line.split(',');
        let parse_u32 = |s: Option<&str>, what: &str| -> Result<u32, DataError> {
            s.ok_or_else(|| DataError::Parse {
                line: i + 1,
                what: format!("missing {what}"),
            })?
            .trim()
            .parse()
            .map_err(|_| DataError::Parse {
                line: i + 1,
                what: format!("bad {what}"),
            })
        };
        let user = parse_u32(parts.next(), "user")?;
        let location = parse_u32(parts.next(), "location")?;
        let ts: i64 = parts
            .next()
            .ok_or_else(|| DataError::Parse {
                line: i + 1,
                what: "missing timestamp".into(),
            })?
            .trim()
            .parse()
            .map_err(|_| DataError::Parse {
                line: i + 1,
                what: "bad timestamp".into(),
            })?;
        out.push(CheckIn::new(user, location, ts));
    }
    Ok(out)
}

/// Encodes the dataset into the compact binary snapshot format.
pub fn encode_binary(dataset: &CheckInDataset) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(16 + dataset.pois.len() * 20 + dataset.num_checkins() * 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(dataset.pois.len() as u32);
    buf.put_u64_le(dataset.num_checkins() as u64);
    for p in &dataset.pois {
        buf.put_u32_le(p.id.0);
        buf.put_f64_le(p.point.lat);
        buf.put_f64_le(p.point.lon);
    }
    for u in &dataset.users {
        for c in &u.checkins {
            buf.put_u32_le(c.user.0);
            buf.put_u32_le(c.location.0);
            buf.put_i64_le(c.timestamp);
        }
    }
    buf.freeze()
}

/// Decodes a binary snapshot produced by [`encode_binary`].
///
/// # Errors
/// Returns [`DataError::Invalid`] on a bad magic/version or truncation.
pub fn decode_binary(mut data: Bytes) -> Result<CheckInDataset, DataError> {
    if data.remaining() < 17 {
        return Err(DataError::Invalid {
            what: "binary snapshot truncated header".into(),
        });
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataError::Invalid {
            what: "bad magic bytes".into(),
        });
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(DataError::Invalid {
            what: format!("unsupported version {version}"),
        });
    }
    let num_pois = data.get_u32_le() as usize;
    let num_checkins = usize::try_from(data.get_u64_le()).map_err(|_| DataError::Invalid {
        what: "binary snapshot count overflow".into(),
    })?;
    // Checked arithmetic: a corrupt header must not wrap the size math
    // into a panic further down.
    let body = num_pois
        .checked_mul(20)
        .and_then(|p| num_checkins.checked_mul(16).and_then(|c| p.checked_add(c)))
        .ok_or_else(|| DataError::Invalid {
            what: "binary snapshot count overflow".into(),
        })?;
    // A garbled count claiming a body beyond the shared frame ceiling
    // fails here explicitly instead of attempting a huge allocation.
    if crate::frame::checked_frame_len(body as u64).is_none() {
        return Err(DataError::Invalid {
            what: format!(
                "binary snapshot claims {body} bytes, over the {} max frame size",
                crate::frame::MAX_FRAME_BYTES
            ),
        });
    }
    if data.remaining() < body {
        return Err(DataError::Invalid {
            what: "binary snapshot truncated body".into(),
        });
    }
    let mut pois = Vec::with_capacity(num_pois);
    for _ in 0..num_pois {
        let id = LocationId(data.get_u32_le());
        let lat = data.get_f64_le();
        let lon = data.get_f64_le();
        pois.push(Poi {
            id,
            point: GeoPoint { lat, lon },
        });
    }
    let mut checkins = Vec::with_capacity(num_checkins);
    for _ in 0..num_checkins {
        let user = data.get_u32_le();
        let location = data.get_u32_le();
        let ts = data.get_i64_le();
        checkins.push(CheckIn::new(user, location, ts));
    }
    Ok(CheckInDataset::from_checkins(pois, checkins))
}

/// Writes a binary snapshot to `path`.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_binary(dataset: &CheckInDataset, path: &Path) -> Result<(), DataError> {
    fs::write(path, encode_binary(dataset))?;
    Ok(())
}

/// Loads a binary snapshot from `path`.
///
/// # Errors
/// Propagates I/O and decode failures.
pub fn load_binary(path: &Path) -> Result<CheckInDataset, DataError> {
    let data = fs::read(path)?;
    decode_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckInDataset {
        let pois = vec![Poi {
            id: LocationId(10),
            point: GeoPoint {
                lat: 35.6,
                lon: 139.7,
            },
        }];
        let cs = vec![
            CheckIn::new(1, 10, 100),
            CheckIn::new(1, 11, 200),
            CheckIn::new(2, 10, 50),
        ];
        CheckInDataset::from_checkins(pois, cs)
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample();
        let csv = checkins_to_csv(&ds);
        assert!(csv.starts_with("user,location,timestamp\n"));
        let back = checkins_from_csv(&csv).unwrap();
        let rebuilt = CheckInDataset::from_checkins(vec![], back);
        assert_eq!(rebuilt.num_checkins(), 3);
        assert_eq!(rebuilt.num_users(), 2);
    }

    #[test]
    fn csv_reports_line_numbers() {
        let bad = "user,location,timestamp\n1,2,3\nx,2,3\n";
        let err = checkins_from_csv(bad).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 3, .. }), "{err}");
        let missing = "1,2\n";
        assert!(checkins_from_csv(missing).is_err());
        assert!(checkins_from_csv("").unwrap().is_empty());
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let ds = sample();
        let bytes = encode_binary(&ds);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let ds = sample();
        let bytes = encode_binary(&ds);
        // Truncated.
        assert!(decode_binary(bytes.slice(..10)).is_err());
        assert!(decode_binary(bytes.slice(..bytes.len() - 4)).is_err());
        // Bad magic.
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        assert!(decode_binary(Bytes::from(raw)).is_err());
        // Bad version.
        let mut raw = bytes.to_vec();
        raw[4] = 99;
        assert!(decode_binary(Bytes::from(raw)).is_err());
    }

    #[test]
    fn oversized_length_claim_fails_with_max_frame_error() {
        let ds = sample();
        let bytes = encode_binary(&ds);
        let mut raw = bytes.to_vec();
        // Claim ~u64::MAX check-ins: the count survives usize conversion on
        // 64-bit hosts, so only the frame ceiling stands between the claim
        // and a monster allocation.
        raw[9..17].copy_from_slice(&(u64::MAX >> 8).to_le_bytes());
        let err = decode_binary(Bytes::from(raw)).unwrap_err();
        assert!(
            err.to_string().contains("max frame size"),
            "expected a max-frame-size diagnostic, got: {err}"
        );
    }

    #[test]
    fn json_and_binary_files_round_trip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("plp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let j = dir.join("ds.json");
        let b = dir.join("ds.bin");
        save_json(&ds, &j).unwrap();
        save_binary(&ds, &b).unwrap();
        assert_eq!(load_json(&j).unwrap(), ds);
        assert_eq!(load_binary(&b).unwrap(), ds);
        let missing = dir.join("nope.bin");
        assert!(load_binary(&missing).is_err());
    }
}
