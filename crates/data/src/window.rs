//! Skip-gram window extraction and batch generation.
//!
//! §3.2: "Given a target location check-in c, a symmetric window of `win`
//! context locations to the left and `win` to the right is created to output
//! multiple pairs of target and context locations as training samples."
//! §4.1: inside a bucket the grouped data is "organized as a single array",
//! read by `generateBatches()`, and "a number β of target-context location
//! pairs are placed in each batch".

use rand::{seq::SliceRandom, Rng};

/// One training example: a (target, context) token pair.
pub type Pair = (usize, usize);

/// Emits every (target, context) pair from `tokens` under a symmetric
/// window of radius `win`.
///
/// `win == 0` yields no pairs. The pair order is deterministic: by target
/// position, then by context offset left-to-right.
pub fn pairs_from_sequence(tokens: &[usize], win: usize) -> Vec<Pair> {
    let mut out = Vec::new();
    pairs_from_sequence_into(tokens, win, &mut out);
    out
}

/// [`pairs_from_sequence`] into a caller-provided buffer. `out` is cleared
/// first and retains its capacity, so the local-SGD loop can reuse one pair
/// buffer across buckets without allocating in steady state.
pub fn pairs_from_sequence_into(tokens: &[usize], win: usize, out: &mut Vec<Pair>) {
    out.clear();
    if win == 0 {
        return;
    }
    for (i, &target) in tokens.iter().enumerate() {
        let lo = i.saturating_sub(win);
        let hi = (i + win).min(tokens.len().saturating_sub(1));
        for (j, &context) in tokens.iter().enumerate().take(hi + 1).skip(lo) {
            if j != i {
                out.push((target, context));
            }
        }
    }
}

/// Emits pairs from several sequences (e.g. a user's sessions) without
/// creating windows that straddle sequence boundaries.
pub fn pairs_from_sequences(sequences: &[Vec<usize>], win: usize) -> Vec<Pair> {
    sequences
        .iter()
        .flat_map(|s| pairs_from_sequence(s, win))
        .collect()
}

/// The paper's `generateBatches`: windows the concatenated bucket array,
/// shuffles the pairs, and chunks them into batches of `batch_size`.
///
/// The final batch may be smaller. `batch_size == 0` is treated as one
/// batch holding everything (degenerate but total).
pub fn generate_batches<R: Rng + ?Sized>(
    rng: &mut R,
    tokens: &[usize],
    win: usize,
    batch_size: usize,
) -> Vec<Vec<Pair>> {
    let mut pairs = pairs_from_sequence(tokens, win);
    pairs.shuffle(rng);
    chunk_pairs(pairs, batch_size)
}

/// Chunks an already-ordered pair list into batches of `batch_size`.
pub fn chunk_pairs(pairs: Vec<Pair>, batch_size: usize) -> Vec<Vec<Pair>> {
    if pairs.is_empty() {
        return Vec::new();
    }
    if batch_size == 0 {
        return vec![pairs];
    }
    pairs.chunks(batch_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_radius_one() {
        let pairs = pairs_from_sequence(&[10, 20, 30], 1);
        assert_eq!(pairs, vec![(10, 20), (20, 10), (20, 30), (30, 20)]);
    }

    #[test]
    fn window_radius_two_counts() {
        // Interior tokens see 2 left + 2 right; edges are truncated.
        let tokens = [1, 2, 3, 4, 5];
        let pairs = pairs_from_sequence(&tokens, 2);
        // Position 0: 2 pairs, 1: 3, 2: 4, 3: 3, 4: 2 => 14.
        assert_eq!(pairs.len(), 14);
        // Every pair's tokens are within distance 2 in the sequence.
        for (t, c) in pairs {
            let ti = tokens.iter().position(|&x| x == t).unwrap();
            let ci = tokens.iter().position(|&x| x == c).unwrap();
            assert!(ti.abs_diff(ci) <= 2 && ti != ci);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pairs_from_sequence(&[], 2).is_empty());
        assert!(pairs_from_sequence(&[7], 2).is_empty());
        assert!(pairs_from_sequence(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn sessions_do_not_leak_across_boundaries() {
        let sessions = vec![vec![1, 2], vec![3, 4]];
        let pairs = pairs_from_sequences(&sessions, 2);
        assert_eq!(pairs, vec![(1, 2), (2, 1), (3, 4), (4, 3)]);
        assert!(!pairs.contains(&(2, 3)), "no cross-session pair");
    }

    #[test]
    fn batches_partition_all_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let tokens: Vec<usize> = (0..50).collect();
        let batches = generate_batches(&mut rng, &tokens, 2, 32);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, pairs_from_sequence(&tokens, 2).len());
        for b in &batches[..batches.len() - 1] {
            assert_eq!(b.len(), 32);
        }
        assert!(batches.last().unwrap().len() <= 32);
        // Same multiset of pairs, just shuffled.
        let mut flat: Vec<Pair> = batches.into_iter().flatten().collect();
        let mut expected = pairs_from_sequence(&tokens, 2);
        flat.sort_unstable();
        expected.sort_unstable();
        assert_eq!(flat, expected);
    }

    #[test]
    fn batch_size_zero_is_single_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let batches = generate_batches(&mut rng, &[1, 2, 3], 1, 0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 4);
        assert!(chunk_pairs(vec![], 8).is_empty());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let tokens: Vec<usize> = (0..30).collect();
        let a = generate_batches(&mut StdRng::seed_from_u64(9), &tokens, 2, 16);
        let b = generate_batches(&mut StdRng::seed_from_u64(9), &tokens, 2, 16);
        assert_eq!(a, b);
    }
}
