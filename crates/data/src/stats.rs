//! Dataset statistics.
//!
//! Used (a) to verify that the synthetic generator matches the paper's
//! published dataset profile (§5.1: 739,828 check-ins, 4,602 users, 5,069
//! locations), and (b) to quantify the skew/sparsity properties (Zipf
//! popularity, §4.1; ~0.1% density, §1) that motivate data grouping.

use serde::{Deserialize, Serialize};

use crate::dataset::CheckInDataset;

/// Aggregate statistics of a check-in dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of users `N`.
    pub num_users: usize,
    /// Number of distinct visited locations `L`.
    pub num_locations: usize,
    /// Total check-ins.
    pub num_checkins: usize,
    /// Mean check-ins per user.
    pub mean_checkins_per_user: f64,
    /// Median check-ins per user.
    pub median_checkins_per_user: f64,
    /// Maximum check-ins by any single user.
    pub max_checkins_per_user: usize,
    /// Minimum check-ins by any user.
    pub min_checkins_per_user: usize,
    /// Fraction of non-zero (user, location) cells: `nnz / (N·L)`.
    pub density: f64,
    /// Gini coefficient of location visit counts (1 = maximally skewed).
    pub location_gini: f64,
    /// Share of all visits captured by the most popular 1% of locations.
    pub top1pct_location_share: f64,
}

/// Computes [`DatasetStats`] over `dataset`.
pub fn dataset_stats(dataset: &CheckInDataset) -> DatasetStats {
    use std::collections::HashMap;

    let num_users = dataset.num_users();
    let num_checkins = dataset.num_checkins();

    let mut per_user: Vec<usize> = dataset.users.iter().map(|u| u.len()).collect();
    per_user.sort_unstable();
    let median = if per_user.is_empty() {
        0.0
    } else if per_user.len() % 2 == 1 {
        per_user[per_user.len() / 2] as f64
    } else {
        (per_user[per_user.len() / 2 - 1] + per_user[per_user.len() / 2]) as f64 / 2.0
    };

    let mut loc_counts: HashMap<u32, usize> = HashMap::new();
    let mut nnz_cells = 0usize;
    for u in &dataset.users {
        let mut locs: Vec<u32> = u.checkins.iter().map(|c| c.location.0).collect();
        for &l in &locs {
            *loc_counts.entry(l).or_insert(0) += 1;
        }
        locs.sort_unstable();
        locs.dedup();
        nnz_cells += locs.len();
    }
    let num_locations = loc_counts.len();
    let density = if num_users == 0 || num_locations == 0 {
        0.0
    } else {
        nnz_cells as f64 / (num_users as f64 * num_locations as f64)
    };

    let mut counts: Vec<usize> = loc_counts.values().copied().collect();
    counts.sort_unstable();
    let location_gini = gini(&counts);
    let top1 = ((num_locations as f64 * 0.01).ceil() as usize)
        .max(1)
        .min(counts.len());
    let top_share = if num_checkins == 0 {
        0.0
    } else {
        counts.iter().rev().take(top1).sum::<usize>() as f64 / num_checkins as f64
    };

    DatasetStats {
        num_users,
        num_locations,
        num_checkins,
        mean_checkins_per_user: if num_users == 0 {
            0.0
        } else {
            num_checkins as f64 / num_users as f64
        },
        median_checkins_per_user: median,
        max_checkins_per_user: per_user.last().copied().unwrap_or(0),
        min_checkins_per_user: per_user.first().copied().unwrap_or(0),
        density,
        location_gini,
        top1pct_location_share: top_share,
    }
}

/// Gini coefficient of a sorted-ascending count vector; `0.0` when empty or
/// all-zero.
pub fn gini(sorted_counts: &[usize]) -> f64 {
    let n = sorted_counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = sorted_counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &c) in sorted_counts.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * c as f64;
    }
    weighted / (n as f64 * total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::CheckIn;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        // Perfect equality.
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        // Extreme concentration approaches (n-1)/n.
        let g = gini(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-12, "g {g}");
    }

    #[test]
    fn stats_on_small_dataset() {
        let cs = vec![
            CheckIn::new(1, 10, 0),
            CheckIn::new(1, 10, 1),
            CheckIn::new(1, 11, 2),
            CheckIn::new(2, 10, 0),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let s = dataset_stats(&ds);
        assert_eq!(s.num_users, 2);
        assert_eq!(s.num_locations, 2);
        assert_eq!(s.num_checkins, 4);
        assert_eq!(s.mean_checkins_per_user, 2.0);
        assert_eq!(s.median_checkins_per_user, 2.0);
        assert_eq!(s.max_checkins_per_user, 3);
        assert_eq!(s.min_checkins_per_user, 1);
        // 3 nnz cells over 2x2.
        assert!((s.density - 0.75).abs() < 1e-12);
        // Location 10 has 3 of 4 visits; top-1% (=1 location) share = 0.75.
        assert!((s.top1pct_location_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_dataset() {
        let ds = CheckInDataset::default();
        let s = dataset_stats(&ds);
        assert_eq!(s.num_users, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.top1pct_location_share, 0.0);
        assert_eq!(s.median_checkins_per_user, 0.0);
    }

    #[test]
    fn skewed_data_has_high_gini() {
        // One hot location, many cold ones.
        let mut cs = Vec::new();
        for t in 0..100 {
            cs.push(CheckIn::new(1, 0, t));
            cs.push(CheckIn::new(2, 0, t));
        }
        for l in 1..50 {
            cs.push(CheckIn::new(1, l, 1000 + l as i64));
        }
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let s = dataset_stats(&ds);
        assert!(s.location_gini > 0.7, "gini {}", s.location_gini);
    }
}
