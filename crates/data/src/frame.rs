//! Shared length-prefixed frame discipline.
//!
//! Every binary surface of the workspace — dataset snapshots
//! ([`crate::io`]), model snapshots (`plp-model`), the `PLPC` training
//! checkpoint (`plp-core`) and the federated coordinator/worker IPC
//! (`plp-fed`) — reads length-prefixed payloads from untrusted bytes. Two
//! rules apply everywhere:
//!
//! 1. **No unbounded allocation from a length prefix.** A garbled length
//!    must fail with an explicit oversize error *before* any allocation is
//!    attempted; [`MAX_FRAME_BYTES`] is the single shared ceiling.
//! 2. **Integrity before trust.** Frames that cross a process boundary
//!    carry a [`crc32`] footer checked before any field is decoded.

/// Hard ceiling on any single length-prefixed allocation (1 GiB).
///
/// Far above any legitimate payload this workspace produces (the largest
/// is a full-parameter checkpoint of a 10⁷-location model, ≈ 100 MB), yet
/// small enough that a corrupted length prefix fails fast with a typed
/// error instead of attempting an absurd allocation and aborting.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Checks a claimed payload length against [`MAX_FRAME_BYTES`].
///
/// Returns the length as `usize` when acceptable; `None` when the claim
/// exceeds the ceiling (or does not fit in `usize`). Callers convert
/// `None` into their own typed error naming the decoder.
pub fn checked_frame_len(claimed: u64) -> Option<usize> {
    let len = usize::try_from(claimed).ok()?;
    (len <= MAX_FRAME_BYTES).then_some(len)
}

/// CRC-32 (IEEE 802.3, reflected) over `data`.
///
/// The one CRC used by every framed format in the workspace: the `PLPC`
/// checkpoint footer and the federated IPC frames share this exact
/// polynomial, so a frame sealed by one layer can be verified by another.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn frame_len_ceiling_is_enforced() {
        assert_eq!(checked_frame_len(0), Some(0));
        assert_eq!(checked_frame_len(1024), Some(1024));
        assert_eq!(
            checked_frame_len(MAX_FRAME_BYTES as u64),
            Some(MAX_FRAME_BYTES)
        );
        assert_eq!(checked_frame_len(MAX_FRAME_BYTES as u64 + 1), None);
        assert_eq!(checked_frame_len(u64::MAX), None);
    }
}
