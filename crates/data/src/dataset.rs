//! Dataset containers: per-user check-in histories and their tokenised form.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::checkin::{CheckIn, Poi, UserId};
use crate::error::DataError;
use crate::session::sessionize;
use crate::vocab::Vocabulary;

/// The historical record `U_u` of one user: check-ins sorted by timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserHistory {
    /// The owner of the history.
    pub user: UserId,
    /// Time-ordered check-ins.
    pub checkins: Vec<CheckIn>,
}

impl UserHistory {
    /// Number of check-ins.
    pub fn len(&self) -> usize {
        self.checkins.len()
    }

    /// `true` iff the user has no check-ins.
    pub fn is_empty(&self) -> bool {
        self.checkins.is_empty()
    }
}

/// A user-partitioned check-in dataset (the set `U` over locations `P`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckInDataset {
    /// Points of interest appearing in the data.
    pub pois: Vec<Poi>,
    /// Per-user histories, sorted by user id.
    pub users: Vec<UserHistory>,
}

impl CheckInDataset {
    /// Groups a flat list of check-ins into per-user, time-sorted histories.
    ///
    /// Users are ordered by id; each user's check-ins are sorted by
    /// timestamp (ties broken by location id for determinism).
    pub fn from_checkins(pois: Vec<Poi>, checkins: Vec<CheckIn>) -> Self {
        let mut by_user: BTreeMap<UserId, Vec<CheckIn>> = BTreeMap::new();
        for c in checkins {
            by_user.entry(c.user).or_default().push(c);
        }
        let users = by_user
            .into_iter()
            .map(|(user, mut cs)| {
                cs.sort_by(|a, b| {
                    a.timestamp
                        .cmp(&b.timestamp)
                        .then(a.location.cmp(&b.location))
                });
                UserHistory { user, checkins: cs }
            })
            .collect();
        CheckInDataset { pois, users }
    }

    /// Number of users `N`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Total number of check-ins.
    pub fn num_checkins(&self) -> usize {
        self.users.iter().map(|u| u.len()).sum()
    }

    /// Number of *distinct* locations actually visited.
    pub fn num_visited_locations(&self) -> usize {
        let mut seen: Vec<u32> = self
            .users
            .iter()
            .flat_map(|u| u.checkins.iter().map(|c| c.location.0))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Checks structural invariants: histories sorted by user, check-ins
    /// time-sorted, every check-in owned by its history's user.
    ///
    /// # Errors
    /// Returns [`DataError::Invalid`] describing the first violation found.
    pub fn validate(&self) -> Result<(), DataError> {
        for w in self.users.windows(2) {
            if w[0].user >= w[1].user {
                return Err(DataError::Invalid {
                    what: format!("user histories not strictly sorted: {:?}", w[1].user),
                });
            }
        }
        for h in &self.users {
            for c in &h.checkins {
                if c.user != h.user {
                    return Err(DataError::Invalid {
                        what: format!("check-in of {:?} filed under {:?}", c.user, h.user),
                    });
                }
            }
            for w in h.checkins.windows(2) {
                if w[0].timestamp > w[1].timestamp {
                    return Err(DataError::Invalid {
                        what: format!("check-ins of {:?} not time-sorted", h.user),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One user's data after tokenisation: sessions of location tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSequences {
    /// The owner.
    pub user: UserId,
    /// Sessions (trajectories of at most the configured duration), each a
    /// time-ordered list of location tokens in `0..vocab_size`.
    pub sessions: Vec<Vec<usize>>,
}

impl UserSequences {
    /// Total number of tokens across sessions.
    pub fn num_tokens(&self) -> usize {
        self.sessions.iter().map(|s| s.len()).sum()
    }

    /// Concatenates all sessions into one array — the per-bucket layout of
    /// §4.1 ("grouped data in each bucket is organized as a single array").
    pub fn flattened(&self) -> Vec<usize> {
        self.sessions.iter().flatten().copied().collect()
    }
}

/// A fully tokenised dataset ready for skip-gram training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenizedDataset {
    /// Per-user token sessions, in the same order as the source dataset.
    pub users: Vec<UserSequences>,
    /// Vocabulary size `L`.
    pub vocab_size: usize,
}

impl TokenizedDataset {
    /// Tokenises `dataset` through `vocab`, splitting each history into
    /// sessions of duration at most `max_session_secs` (the paper uses six
    /// hours, following [10, 34]).
    ///
    /// # Errors
    /// Returns [`DataError::UnknownLocation`] if a check-in's location is
    /// missing from the vocabulary.
    pub fn from_dataset(
        dataset: &CheckInDataset,
        vocab: &Vocabulary,
        max_session_secs: i64,
    ) -> Result<Self, DataError> {
        let mut users = Vec::with_capacity(dataset.users.len());
        for h in &dataset.users {
            let mut sessions = Vec::new();
            for session in sessionize(h, max_session_secs) {
                let mut tokens = Vec::with_capacity(session.len());
                for c in session {
                    tokens.push(vocab.token(c.location).ok_or(DataError::UnknownLocation {
                        location: c.location.0,
                    })?);
                }
                sessions.push(tokens);
            }
            users.push(UserSequences {
                user: h.user,
                sessions,
            });
        }
        Ok(TokenizedDataset {
            users,
            vocab_size: vocab.len(),
        })
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Total number of tokens across all users.
    pub fn total_tokens(&self) -> usize {
        self.users.iter().map(|u| u.num_tokens()).sum()
    }

    /// Density as defined for check-in matrices: non-zero (user, location)
    /// cells over `N · L`. The paper quotes location datasets at ~0.1%
    /// density (§1).
    pub fn density(&self) -> f64 {
        if self.users.is_empty() || self.vocab_size == 0 {
            return 0.0;
        }
        let mut nonzero = 0usize;
        for u in &self.users {
            let mut locs: Vec<usize> = u.sessions.iter().flatten().copied().collect();
            locs.sort_unstable();
            locs.dedup();
            nonzero += locs.len();
        }
        nonzero as f64 / (self.users.len() as f64 * self.vocab_size as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{GeoPoint, LocationId};

    fn poi(id: u32) -> Poi {
        Poi {
            id: LocationId(id),
            point: GeoPoint {
                lat: 35.6,
                lon: 139.7,
            },
        }
    }

    #[test]
    fn from_checkins_groups_and_sorts() {
        let cs = vec![
            CheckIn::new(2, 10, 300),
            CheckIn::new(1, 11, 200),
            CheckIn::new(1, 12, 100),
            CheckIn::new(2, 13, 250),
        ];
        let ds = CheckInDataset::from_checkins(vec![poi(10)], cs);
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.users[0].user, UserId(1));
        assert_eq!(ds.users[0].checkins[0].location, LocationId(12));
        assert_eq!(ds.users[1].checkins[0].location, LocationId(13));
        ds.validate().unwrap();
        assert_eq!(ds.num_checkins(), 4);
        assert_eq!(ds.num_visited_locations(), 4);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let cs = vec![CheckIn::new(1, 9, 100), CheckIn::new(1, 3, 100)];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        assert_eq!(ds.users[0].checkins[0].location, LocationId(3));
    }

    #[test]
    fn validate_catches_corruption() {
        let cs = vec![CheckIn::new(1, 1, 100), CheckIn::new(1, 2, 50)];
        let mut ds = CheckInDataset::from_checkins(vec![], cs);
        // Corrupt ordering manually.
        ds.users[0].checkins.swap(0, 1);
        assert!(ds.validate().is_err());

        let cs = vec![CheckIn::new(1, 1, 100)];
        let mut ds = CheckInDataset::from_checkins(vec![], cs);
        ds.users[0].checkins[0].user = UserId(9);
        assert!(ds.validate().is_err());
    }

    #[test]
    fn tokenize_respects_sessions_and_vocab() {
        const HOUR: i64 = 3600;
        let cs = vec![
            CheckIn::new(1, 100, 0),
            CheckIn::new(1, 200, HOUR),
            // 10 hours later: a new session.
            CheckIn::new(1, 100, 11 * HOUR),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let vocab = Vocabulary::build(&ds);
        let tok = TokenizedDataset::from_dataset(&ds, &vocab, 6 * HOUR).unwrap();
        assert_eq!(tok.vocab_size, 2);
        assert_eq!(tok.users[0].sessions.len(), 2);
        assert_eq!(tok.users[0].sessions[0].len(), 2);
        assert_eq!(tok.users[0].sessions[1].len(), 1);
        assert_eq!(tok.total_tokens(), 3);
        assert_eq!(tok.users[0].flattened().len(), 3);
    }

    #[test]
    fn tokenize_rejects_unknown_location() {
        let cs = vec![CheckIn::new(1, 100, 0)];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let empty = CheckInDataset::default();
        let vocab = Vocabulary::build(&empty);
        let r = TokenizedDataset::from_dataset(&ds, &vocab, 3600);
        assert!(matches!(
            r,
            Err(DataError::UnknownLocation { location: 100 })
        ));
    }

    #[test]
    fn density_counts_distinct_user_location_pairs() {
        let cs = vec![
            CheckIn::new(1, 100, 0),
            CheckIn::new(1, 100, 10),
            CheckIn::new(1, 200, 20),
            CheckIn::new(2, 100, 0),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let vocab = Vocabulary::build(&ds);
        let tok = TokenizedDataset::from_dataset(&ds, &vocab, i64::MAX).unwrap();
        // 3 distinct (user, loc) cells over 2 users x 2 locations.
        assert!((tok.density() - 0.75).abs() < 1e-12);
        let empty = TokenizedDataset {
            users: vec![],
            vocab_size: 0,
        };
        assert_eq!(empty.density(), 0.0);
    }
}
