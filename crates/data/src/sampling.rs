//! Per-step user sampling (Algorithm 1, line 5).
//!
//! "Given a sampling probability q = m/N, each element of the user set is
//! subjected to an independent Bernoulli trial … the size of the sampled set
//! is equal to m only in expectation. This is a necessary step in correctly
//! accounting for the privacy loss via the moments accountant."

use rand::Rng;

use plp_linalg::sample::poisson_subsample;

use crate::error::DataError;

/// Poisson-samples user indices `0..num_users` with probability `q` each.
///
/// # Errors
/// `q` must lie in `[0, 1]`.
pub fn sample_users<R: Rng + ?Sized>(
    rng: &mut R,
    num_users: usize,
    q: f64,
) -> Result<Vec<usize>, DataError> {
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(DataError::BadConfig {
            name: "q",
            expected: "in [0, 1]",
        });
    }
    Ok(poisson_subsample(rng, num_users, q))
}

/// The expected sample size `m = q · N`.
pub fn expected_sample_size(num_users: usize, q: f64) -> f64 {
    q * num_users as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_size_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 4602;
        let q = 0.06;
        let mut total = 0usize;
        let reps = 200;
        for _ in 0..reps {
            total += sample_users(&mut rng, n, q).unwrap().len();
        }
        let mean = total as f64 / reps as f64;
        let expected = expected_sample_size(n, q);
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "{mean} vs {expected}"
        );
    }

    #[test]
    fn sample_sizes_vary_across_steps() {
        // Poisson sampling gives a *random* sample size — a fixed-size
        // sampler would invalidate the accountant's amplification bound.
        let mut rng = StdRng::seed_from_u64(22);
        let sizes: Vec<usize> = (0..20)
            .map(|_| sample_users(&mut rng, 1000, 0.1).unwrap().len())
            .collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn indices_are_valid_sorted_and_unique() {
        let mut rng = StdRng::seed_from_u64(23);
        let s = sample_users(&mut rng, 100, 0.5).unwrap();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn rejects_bad_q() {
        let mut rng = StdRng::seed_from_u64(24);
        assert!(sample_users(&mut rng, 10, -0.1).is_err());
        assert!(sample_users(&mut rng, 10, 1.5).is_err());
        assert!(sample_users(&mut rng, 10, f64::NAN).is_err());
    }

    #[test]
    fn empty_population_yields_empty_sample() {
        let mut rng = StdRng::seed_from_u64(25);
        assert!(sample_users(&mut rng, 0, 0.5).unwrap().is_empty());
    }
}
