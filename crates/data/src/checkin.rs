//! Core record types: users, POIs, and check-ins.
//!
//! A check-in is the triple `⟨u, l, t⟩` of §3.1 — user identifier, location
//! and time. Identifiers are newtypes so that user and location indices can
//! never be confused at compile time.

use serde::{Deserialize, Serialize};

/// Opaque user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Opaque location (POI) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub u32);

/// Seconds since the Unix epoch.
pub type Timestamp = i64;

/// A WGS-84 coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Approximate great-circle distance in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        const EARTH_RADIUS_KM: f64 = 6371.0;
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// An axis-aligned geographic bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern latitude bound.
    pub south: f64,
    /// Northern latitude bound.
    pub north: f64,
    /// Western longitude bound.
    pub west: f64,
    /// Eastern longitude bound.
    pub east: f64,
}

impl BoundingBox {
    /// The Tokyo study region of §5.1: a 35 × 25 km² area bounded by
    /// latitudes 35.554–35.759 and longitudes 139.496–139.905.
    pub fn tokyo() -> Self {
        BoundingBox {
            south: 35.554,
            north: 35.759,
            west: 139.496,
            east: 139.905,
        }
    }

    /// `true` iff `p` lies inside (inclusive on all edges).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.south && p.lat <= self.north && p.lon >= self.west && p.lon <= self.east
    }
}

/// A point of interest: a location identifier with its coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Location identifier.
    pub id: LocationId,
    /// POI coordinate.
    pub point: GeoPoint,
}

/// One check-in record `⟨u, l, t⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckIn {
    /// The user who checked in.
    pub user: UserId,
    /// The visited location.
    pub location: LocationId,
    /// When the visit happened (Unix seconds).
    pub timestamp: Timestamp,
}

impl CheckIn {
    /// Convenience constructor.
    pub fn new(user: u32, location: u32, timestamp: Timestamp) -> Self {
        CheckIn {
            user: UserId(user),
            location: LocationId(location),
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct() {
        // This is a compile-time property; at runtime just check equality.
        assert_eq!(UserId(3), UserId(3));
        assert_ne!(LocationId(3), LocationId(4));
    }

    #[test]
    fn haversine_known_distance() {
        // Tokyo Station to Shinjuku Station: ~6.3 km.
        let tokyo_sta = GeoPoint {
            lat: 35.6812,
            lon: 139.7671,
        };
        let shinjuku = GeoPoint {
            lat: 35.6896,
            lon: 139.7006,
        };
        let d = tokyo_sta.distance_km(&shinjuku);
        assert!((5.9..6.8).contains(&d), "distance {d}");
        assert_eq!(tokyo_sta.distance_km(&tokyo_sta), 0.0);
    }

    #[test]
    fn tokyo_bbox_dimensions_match_paper() {
        // The paper describes the region as roughly 35 x 25 km².
        let b = BoundingBox::tokyo();
        let width = GeoPoint {
            lat: (b.south + b.north) / 2.0,
            lon: b.west,
        }
        .distance_km(&GeoPoint {
            lat: (b.south + b.north) / 2.0,
            lon: b.east,
        });
        let height = GeoPoint {
            lat: b.south,
            lon: b.west,
        }
        .distance_km(&GeoPoint {
            lat: b.north,
            lon: b.west,
        });
        assert!((33.0..40.0).contains(&width), "width {width}");
        assert!((20.0..26.0).contains(&height), "height {height}");
    }

    #[test]
    fn bbox_containment_is_inclusive() {
        let b = BoundingBox::tokyo();
        assert!(b.contains(&GeoPoint {
            lat: 35.554,
            lon: 139.496
        }));
        assert!(b.contains(&GeoPoint {
            lat: 35.65,
            lon: 139.7
        }));
        assert!(!b.contains(&GeoPoint {
            lat: 35.50,
            lon: 139.7
        }));
        assert!(!b.contains(&GeoPoint {
            lat: 35.65,
            lon: 140.0
        }));
    }

    #[test]
    fn checkin_constructor_and_serde() {
        let c = CheckIn::new(1, 2, 1_333_238_400);
        assert_eq!(c.user, UserId(1));
        assert_eq!(c.location, LocationId(2));
        let s = serde_json::to_string(&c).unwrap();
        let back: CheckIn = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
