//! Preprocessing filters of §5.1.
//!
//! "We filter out the users with fewer than ten check-ins, as well as the
//! locations visited by fewer than two users (such filtering is commonly
//! performed in the location recommendation literature)." Removing sparse
//! locations can push users below the check-in threshold and vice versa, so
//! the two filters are applied alternately until a fixpoint.

use std::collections::HashMap;

use crate::checkin::{BoundingBox, LocationId};
use crate::dataset::CheckInDataset;

/// Filter thresholds; the defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Minimum check-ins a user must retain (paper: 10).
    pub min_checkins_per_user: usize,
    /// Minimum *distinct* visitors a location must retain (paper: 2).
    pub min_users_per_location: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            min_checkins_per_user: 10,
            min_users_per_location: 2,
        }
    }
}

/// Restricts the dataset to check-ins at POIs inside `bbox`; POIs outside
/// the box are dropped along with their check-ins. Check-ins at locations
/// with no known POI coordinate are kept (coordinates are optional
/// metadata).
pub fn filter_bounding_box(dataset: &CheckInDataset, bbox: &BoundingBox) -> CheckInDataset {
    let outside: HashMap<LocationId, bool> = dataset
        .pois
        .iter()
        .map(|p| (p.id, !bbox.contains(&p.point)))
        .collect();
    let pois = dataset
        .pois
        .iter()
        .filter(|p| bbox.contains(&p.point))
        .copied()
        .collect();
    let checkins = dataset
        .users
        .iter()
        .flat_map(|u| u.checkins.iter())
        .filter(|c| !outside.get(&c.location).copied().unwrap_or(false))
        .copied()
        .collect();
    CheckInDataset::from_checkins(pois, checkins)
}

/// Applies the user/location sparsity filters until a fixpoint.
///
/// Returns the filtered dataset (possibly empty). POI metadata is retained
/// only for surviving locations.
pub fn filter_sparse(dataset: &CheckInDataset, config: FilterConfig) -> CheckInDataset {
    let mut current = dataset.clone();
    loop {
        // Count distinct visitors per location.
        let mut visitors: HashMap<LocationId, Vec<u32>> = HashMap::new();
        for u in &current.users {
            for c in &u.checkins {
                let v = visitors.entry(c.location).or_default();
                if !v.contains(&c.user.0) {
                    v.push(c.user.0);
                }
            }
        }
        let keep_location: HashMap<LocationId, bool> = visitors
            .iter()
            .map(|(&l, v)| (l, v.len() >= config.min_users_per_location))
            .collect();

        let mut changed = false;
        let mut checkins = Vec::new();
        for u in &current.users {
            let kept: Vec<_> = u
                .checkins
                .iter()
                .filter(|c| keep_location.get(&c.location).copied().unwrap_or(false))
                .copied()
                .collect();
            if kept.len() < u.checkins.len() {
                changed = true;
            }
            if kept.len() >= config.min_checkins_per_user {
                checkins.extend(kept);
            } else if !kept.is_empty() || !u.checkins.is_empty() {
                changed = true;
            }
        }

        let surviving: HashMap<LocationId, bool> = checkins
            .iter()
            .map(|c: &crate::checkin::CheckIn| (c.location, true))
            .collect();
        let pois = current
            .pois
            .iter()
            .filter(|p| surviving.get(&p.id).copied().unwrap_or(false))
            .copied()
            .collect();
        let next = CheckInDataset::from_checkins(pois, checkins);
        if !changed {
            return next;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{CheckIn, GeoPoint, Poi};

    fn poi(id: u32, lat: f64, lon: f64) -> Poi {
        Poi {
            id: LocationId(id),
            point: GeoPoint { lat, lon },
        }
    }

    #[test]
    fn drops_users_below_threshold() {
        // User 1 has 3 check-ins, user 2 has 1. Threshold 2.
        let cs = vec![
            CheckIn::new(1, 10, 0),
            CheckIn::new(1, 10, 1),
            CheckIn::new(1, 11, 2),
            CheckIn::new(2, 10, 0),
            CheckIn::new(3, 10, 0),
            CheckIn::new(3, 11, 1),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let f = filter_sparse(
            &ds,
            FilterConfig {
                min_checkins_per_user: 2,
                min_users_per_location: 2,
            },
        );
        assert_eq!(f.num_users(), 2, "users 1 and 3 survive");
        assert!(f.users.iter().all(|u| u.len() >= 2));
    }

    #[test]
    fn drops_single_visitor_locations() {
        // Location 99 visited only by user 1.
        let cs = vec![
            CheckIn::new(1, 10, 0),
            CheckIn::new(1, 99, 1),
            CheckIn::new(2, 10, 0),
            CheckIn::new(2, 10, 5),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let f = filter_sparse(
            &ds,
            FilterConfig {
                min_checkins_per_user: 1,
                min_users_per_location: 2,
            },
        );
        let locs: Vec<u32> = f
            .users
            .iter()
            .flat_map(|u| u.checkins.iter().map(|c| c.location.0))
            .collect();
        assert!(!locs.contains(&99));
        assert!(locs.contains(&10));
    }

    #[test]
    fn cascading_removal_reaches_fixpoint() {
        // Removing location 99 (1 visitor) drops user 1 below threshold;
        // dropping user 1 leaves location 10 with one visitor, which then
        // must go, taking user 2 with it: the fixpoint is empty.
        let cs = vec![
            CheckIn::new(1, 99, 0),
            CheckIn::new(1, 10, 1),
            CheckIn::new(2, 10, 0),
            CheckIn::new(2, 20, 1),
            CheckIn::new(3, 20, 0),
        ];
        let ds = CheckInDataset::from_checkins(vec![], cs);
        let f = filter_sparse(
            &ds,
            FilterConfig {
                min_checkins_per_user: 2,
                min_users_per_location: 2,
            },
        );
        assert_eq!(f.num_users(), 0);
        assert_eq!(f.num_checkins(), 0);
    }

    #[test]
    fn surviving_pois_keep_metadata() {
        let cs = vec![
            CheckIn::new(1, 10, 0),
            CheckIn::new(1, 10, 1),
            CheckIn::new(2, 10, 0),
            CheckIn::new(2, 10, 1),
        ];
        let pois = vec![poi(10, 35.6, 139.7), poi(11, 35.6, 139.7)];
        let ds = CheckInDataset::from_checkins(pois, cs);
        let f = filter_sparse(&ds, FilterConfig::default());
        // Threshold 10 per user kills everything here.
        assert_eq!(f.num_users(), 0);
        let f2 = filter_sparse(
            &ds,
            FilterConfig {
                min_checkins_per_user: 2,
                min_users_per_location: 2,
            },
        );
        assert_eq!(f2.pois.len(), 1);
        assert_eq!(f2.pois[0].id, LocationId(10));
    }

    #[test]
    fn bounding_box_filter_respects_coordinates() {
        let inside = poi(1, 35.6, 139.7);
        let outside = poi(2, 40.0, 139.7);
        let cs = vec![
            CheckIn::new(1, 1, 0),
            CheckIn::new(1, 2, 1),
            CheckIn::new(1, 3, 2), // no POI metadata: kept
        ];
        let ds = CheckInDataset::from_checkins(vec![inside, outside], cs);
        let f = filter_bounding_box(&ds, &BoundingBox::tokyo());
        assert_eq!(f.pois.len(), 1);
        let locs: Vec<u32> = f.users[0].checkins.iter().map(|c| c.location.0).collect();
        assert_eq!(locs, vec![1, 3]);
    }
}
