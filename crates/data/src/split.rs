//! Train/validation/test splitting by user.
//!
//! §5.1 (Model Training): "our testing and validation sets consist of
//! location visits of users who are *not* part of the training set … a
//! randomly selected set of 100 users and their corresponding check-ins are
//! removed from the dataset", once for validation and once for testing; the
//! remaining users form the training set. Held-out users are a faithful
//! proxy for deployment because the model learns no user-specific
//! representations.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::CheckInDataset;
use crate::error::DataError;

/// A user-level holdout split.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Users whose data trains the model.
    pub train: CheckInDataset,
    /// Held-out users for hyper-parameter selection.
    pub validation: CheckInDataset,
    /// Held-out users for final evaluation.
    pub test: CheckInDataset,
}

/// Removes `num_validation` + `num_test` randomly chosen users from
/// `dataset` into held-out sets; everyone else trains.
///
/// # Errors
/// The dataset must contain more users than the two holdout sizes combined.
pub fn holdout_split<R: Rng + ?Sized>(
    rng: &mut R,
    dataset: &CheckInDataset,
    num_validation: usize,
    num_test: usize,
) -> Result<Split, DataError> {
    let n = dataset.num_users();
    if num_validation + num_test >= n {
        return Err(DataError::BadConfig {
            name: "num_validation + num_test",
            expected: "strictly less than the number of users",
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let val_set: &[usize] = &order[..num_validation];
    let test_set: &[usize] = &order[num_validation..num_validation + num_test];

    let pick = |indices: &[usize]| -> CheckInDataset {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        CheckInDataset {
            pois: dataset.pois.clone(),
            users: sorted.iter().map(|&i| dataset.users[i].clone()).collect(),
        }
    };
    let rest: Vec<usize> = order[num_validation + num_test..].to_vec();
    Ok(Split {
        train: pick(&rest),
        validation: pick(val_set),
        test: pick(test_set),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::CheckIn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(num_users: u32) -> CheckInDataset {
        let mut cs = Vec::new();
        for u in 0..num_users {
            for t in 0..3 {
                cs.push(CheckIn::new(u, u % 7, t));
            }
        }
        CheckInDataset::from_checkins(vec![], cs)
    }

    #[test]
    fn split_sizes_add_up() {
        let ds = dataset(50);
        let mut rng = StdRng::seed_from_u64(1);
        let s = holdout_split(&mut rng, &ds, 5, 7).unwrap();
        assert_eq!(s.validation.num_users(), 5);
        assert_eq!(s.test.num_users(), 7);
        assert_eq!(s.train.num_users(), 38);
        s.train.validate().unwrap();
        s.validation.validate().unwrap();
        s.test.validate().unwrap();
    }

    #[test]
    fn splits_are_disjoint_and_cover() {
        let ds = dataset(30);
        let mut rng = StdRng::seed_from_u64(2);
        let s = holdout_split(&mut rng, &ds, 4, 4).unwrap();
        let mut all: Vec<u32> = s
            .train
            .users
            .iter()
            .chain(&s.validation.users)
            .chain(&s.test.users)
            .map(|u| u.user.0)
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..30).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let ds = dataset(40);
        let a = holdout_split(&mut StdRng::seed_from_u64(9), &ds, 5, 5).unwrap();
        let b = holdout_split(&mut StdRng::seed_from_u64(9), &ds, 5, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_oversized_holdout() {
        let ds = dataset(10);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(holdout_split(&mut rng, &ds, 5, 5).is_err());
        assert!(holdout_split(&mut rng, &ds, 11, 0).is_err());
        assert!(holdout_split(&mut rng, &ds, 4, 5).is_ok());
    }
}
