//! Session (trajectory) segmentation.
//!
//! Following §5.1 ("each individual trajectory does not exceed a total
//! duration of six hours, following the work in [10, 34]"), a user's
//! check-in history is cut into *sessions*: maximal time-ordered runs whose
//! first-to-last span stays within a maximum duration.

use crate::checkin::CheckIn;
use crate::dataset::UserHistory;

/// Six hours in seconds — the paper's trajectory duration cap.
pub const SIX_HOURS_SECS: i64 = 6 * 3600;

/// Splits `history` into sessions whose total duration (last minus first
/// timestamp) is at most `max_duration_secs`.
///
/// A non-positive duration yields one session per check-in. Check-ins are
/// assumed time-sorted (as [`UserHistory`] guarantees).
pub fn sessionize(history: &UserHistory, max_duration_secs: i64) -> Vec<Vec<CheckIn>> {
    let mut sessions = Vec::new();
    let mut current: Vec<CheckIn> = Vec::new();
    for &c in &history.checkins {
        match current.first() {
            Some(first)
                if max_duration_secs > 0 && c.timestamp - first.timestamp <= max_duration_secs =>
            {
                current.push(c);
            }
            Some(_) => {
                sessions.push(std::mem::take(&mut current));
                current.push(c);
            }
            None => current.push(c),
        }
    }
    if !current.is_empty() {
        sessions.push(current);
    }
    sessions
}

/// Splits on *gaps*: a new session starts whenever the time since the
/// previous check-in exceeds `max_gap_secs`. This is the alternative
/// convention common in the POI-recommendation literature; provided for
/// ablations.
pub fn sessionize_by_gap(history: &UserHistory, max_gap_secs: i64) -> Vec<Vec<CheckIn>> {
    let mut sessions = Vec::new();
    let mut current: Vec<CheckIn> = Vec::new();
    for &c in &history.checkins {
        match current.last() {
            Some(prev) if max_gap_secs > 0 && c.timestamp - prev.timestamp <= max_gap_secs => {
                current.push(c);
            }
            Some(_) => {
                sessions.push(std::mem::take(&mut current));
                current.push(c);
            }
            None => current.push(c),
        }
    }
    if !current.is_empty() {
        sessions.push(current);
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::UserId;

    fn history(times: &[i64]) -> UserHistory {
        UserHistory {
            user: UserId(1),
            checkins: times
                .iter()
                .map(|&t| CheckIn::new(1, t as u32, t))
                .collect(),
        }
    }

    #[test]
    fn splits_on_duration() {
        const H: i64 = 3600;
        // 0h, 2h, 5h fit in one 6h session; 7h starts a new one because the
        // span 0..7h exceeds six hours.
        let h = history(&[0, 2 * H, 5 * H, 7 * H, 8 * H]);
        let s = sessionize(&h, SIX_HOURS_SECS);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 3);
        assert_eq!(s[1].len(), 2);
    }

    #[test]
    fn single_long_run_stays_together_under_duration_cap() {
        let h = history(&[0, 100, 200, 300]);
        let s = sessionize(&h, SIX_HOURS_SECS);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 4);
    }

    #[test]
    fn empty_history_yields_no_sessions() {
        let h = history(&[]);
        assert!(sessionize(&h, SIX_HOURS_SECS).is_empty());
        assert!(sessionize_by_gap(&h, 3600).is_empty());
    }

    #[test]
    fn non_positive_duration_isolates_each_checkin() {
        let h = history(&[0, 10, 20]);
        let s = sessionize(&h, 0);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|x| x.len() == 1));
    }

    #[test]
    fn duration_vs_gap_semantics_differ() {
        const H: i64 = 3600;
        // Check-ins every 2 hours for 12 hours: gaps never exceed 2h, but
        // the total span does exceed 6h.
        let times: Vec<i64> = (0..7).map(|i| i * 2 * H).collect();
        let h = history(&times);
        let by_duration = sessionize(&h, SIX_HOURS_SECS);
        let by_gap = sessionize_by_gap(&h, 2 * H);
        assert!(by_duration.len() > 1, "duration cap must split");
        assert_eq!(by_gap.len(), 1, "gap rule must not split");
    }

    #[test]
    fn sessions_preserve_order_and_content() {
        let h = history(&[5, 10, 100_000]);
        let s = sessionize(&h, SIX_HOURS_SECS);
        let flat: Vec<i64> = s.iter().flatten().map(|c| c.timestamp).collect();
        assert_eq!(flat, vec![5, 10, 100_000]);
    }
}
