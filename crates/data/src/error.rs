//! Error types for the data layer.

use std::fmt;

/// Errors produced while loading, validating or transforming check-in data.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A record referenced a location absent from the vocabulary.
    UnknownLocation {
        /// The raw location identifier.
        location: u32,
    },
    /// A record referenced a user absent from the dataset.
    UnknownUser {
        /// The raw user identifier.
        user: u32,
    },
    /// A structural requirement was violated (e.g. unsorted timestamps).
    Invalid {
        /// Description of the violated requirement.
        what: String,
    },
    /// A configuration parameter was out of domain.
    BadConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// Parsing external data failed.
    Parse {
        /// Line number (1-based) where parsing failed, if known.
        line: usize,
        /// Description of the failure.
        what: String,
    },
    /// An I/O failure, carrying the rendered `std::io::Error`.
    Io {
        /// The rendered I/O error message.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownLocation { location } => write!(f, "unknown location id {location}"),
            DataError::UnknownUser { user } => write!(f, "unknown user id {user}"),
            DataError::Invalid { what } => write!(f, "invalid data: {what}"),
            DataError::BadConfig { name, expected } => {
                write!(f, "bad configuration: {name} must be {expected}")
            }
            DataError::Parse { line, what } => write!(f, "parse error at line {line}: {what}"),
            DataError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            DataError::UnknownLocation { location: 7 }.to_string(),
            "unknown location id 7"
        );
        assert_eq!(
            DataError::UnknownUser { user: 3 }.to_string(),
            "unknown user id 3"
        );
        assert!(DataError::Invalid { what: "x".into() }
            .to_string()
            .contains("x"));
        let e = DataError::BadConfig {
            name: "lambda",
            expected: ">= 1",
        };
        assert!(e.to_string().contains("lambda"));
        let e = DataError::Parse {
            line: 4,
            what: "bad float".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(e.to_string().contains("nope"));
    }
}
