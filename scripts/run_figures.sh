#!/usr/bin/env bash
# Regenerates every figure of the paper at figure scale.
# Results land in results/<figure>.txt; EXPERIMENTS.md records the analysis.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
SCALE="${SCALE:-figure}"
SEED="${SEED:-42}"
# Ordered so the headline comparisons complete first.
BINS=(
  fig07_plp_vs_dpsgd_eps
  fig10_vary_lambda
  fig06_nonprivate_training
  fig08_vary_q
  fig09_runtime_vs_lambda
  ablation_omega
  ablation_grouping_strategy
  fig12_vary_clip
  fig11_vary_sigma
  fig13_vary_neg
  fig05_hparam_grid
  ttest_plp_vs_dpsgd
)
cargo build --release -p plp-bench
for bin in "${BINS[@]}"; do
  echo "=== running $bin (scale=$SCALE seed=$SEED) ==="
  cargo run --release -q -p plp-bench --bin "$bin" -- \
    --scale "$SCALE" --seed "$SEED" | tee "results/$bin.txt"
done
echo "all figures regenerated under results/"
