#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the full test suite.
# Mirrors .github/workflows/ci.yml so the same checks run locally with
# no network access (all dependencies are vendored in compat/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (root package, tier-1) =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== chaos drill (crash-safety smoke) =="
cargo run --release -p plp-bench --bin chaos

echo "== swap_chaos drill (hot-swap serving: torn writers, corrupt candidates, hammer) =="
cargo run --release -p plp-bench --bin swap_chaos -- --smoke

echo "== fed_chaos drill (multi-process federated smoke + traced round) =="
cargo run --release -p plp-bench --bin fed_chaos -- --smoke \
  --trace-out target/BENCH_fed_trace.json

echo "== trace stitcher (python mirror over the fed_chaos dumps) =="
python3 scripts/trace_stitch.py --out target/BENCH_fed_trace_py.json \
  target/fed_trace_dumps
# The operator-side stitcher must agree with the in-process one.
python3 - target/BENCH_fed_trace.json target/BENCH_fed_trace_py.json <<'PY'
import json, sys
def sig(path):
    t = json.load(open(path))
    return sorted(
        (e.get("ph"), e.get("name"), e.get("pid"), e.get("ts"), e.get("dur"))
        for e in t["traceEvents"]
    )
assert sig(sys.argv[1]) == sig(sys.argv[2]), "python stitcher diverged from rust"
print("stitchers agree")
PY

echo "== serve load-generator smoke (batched == sequential, ANN cross-check, hot-swap) =="
cargo run --release -p plp-bench --bin serve_load -- --smoke --swap --out target/BENCH_serve_smoke.json

echo "== bench guard (ANN recall@10 floor) =="
python3 scripts/bench_guard.py --serve target/BENCH_serve_smoke.json 0.95

echo "== bench guard (hot-swap: zero dropped/torn + mmap load floor) =="
# The smoke run swaps 12 generations; the committed full-run report is
# held to the 50-swap / 10x-mmap acceptance floors.
python3 scripts/bench_guard.py --swap target/BENCH_serve_smoke.json 12 10
python3 scripts/bench_guard.py --swap BENCH_serve.json 50 10

echo "== training-throughput smoke (thread-count invariance) =="
cargo run --release -p plp-bench --bin train_throughput -- --smoke \
  --out target/BENCH_train_smoke.json

echo "== bench guard (noise+server_update share threshold) =="
python3 scripts/bench_guard.py target/BENCH_train_smoke.json 0.35

echo "== bench guard (train: steps/sec floor + local_sgd share ceiling) =="
# The smoke run gets a lenient floor (its steps/sec depend on the host);
# the committed full-run report is held to the recorded acceptance floor.
python3 scripts/bench_guard.py --train target/BENCH_train_smoke.json 5 0.65
python3 scripts/bench_guard.py --train BENCH_train.json 35.9 0.65

echo "== observability smoke (phase spans, budget gauge, JSONL log) =="
cargo run --release -p plp-bench --bin obs_report -- --smoke \
  --out target/BENCH_obs_smoke.json --log target/BENCH_obs_events.jsonl
# The report asserts the log parses, but belt-and-braces: every line must
# be a JSON object.
python3 - target/BENCH_obs_events.jsonl <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l]
for i, line in enumerate(lines):
    event = json.loads(line)
    assert isinstance(event, dict) and "kind" in event, f"line {i}: {line!r}"
print(f"event log OK ({len(lines)} events)")
PY

echo "== bench guard (tracing overhead ceiling) =="
python3 scripts/bench_guard.py --obs target/BENCH_obs_smoke.json 0.05

echo "CI checks passed."
