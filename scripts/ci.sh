#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build and the full test suite.
# Mirrors .github/workflows/ci.yml so the same checks run locally with
# no network access (all dependencies are vendored in compat/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (root package, tier-1) =="
cargo test -q

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "== chaos drill (crash-safety smoke) =="
cargo run --release -p plp-bench --bin chaos

echo "== serve load-generator smoke (batched == sequential) =="
cargo run --release -p plp-bench --bin serve_load -- --smoke --out target/BENCH_serve_smoke.json

echo "CI checks passed."
