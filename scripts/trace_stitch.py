#!/usr/bin/env python3
"""Stitch per-process flight-recorder dumps into one Chrome/Perfetto trace.

Operator-side mirror of `plp_obs::trace::stitch_chrome_trace`: takes the
JSONL dumps the coordinator and workers leave behind (`trace_*.jsonl`)
and merges them into a single trace-event JSON loadable in Perfetto or
chrome://tracing. The first dump is the clock anchor (by convention the
coordinator); every other process is offset so its earliest span whose
parent lives in the anchor starts where that parent starts, falling back
to min-timestamp alignment when no cross-process edge exists.
Cross-process parent/child edges get `ph:"s"`/`ph:"f"` flow events named
`fed_pipe`, keyed by the deterministic span id, so the arrow is drawn
across the pipe.

Usage: trace_stitch.py --out STITCHED.json DUMP.jsonl [DUMP.jsonl ...]
       trace_stitch.py --out STITCHED.json TRACE_DIR

With a directory, `trace_coordinator.jsonl` is the anchor and every
`trace_worker_*.jsonl` follows (sorted). Unparseable record lines are
skipped and counted — a dump torn by a killed process is expected.

Exit codes: 0 stitched, 1 unusable dump, 2 usage error.
"""

import json
import os
import sys


def parse_dump(path: str):
    """Returns (dump_dict, None) or (None, error_string)."""
    try:
        with open(path) as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
    except OSError as e:
        return None, f"cannot read {path}: {e}"
    if not lines:
        return None, f"{path}: empty dump"
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return None, f"{path}: bad meta line: {e.msg}"
    if not isinstance(meta, dict) or meta.get("record") != "meta":
        return None, f"{path}: first line is not a meta record"
    if "process" not in meta or "pid" not in meta:
        return None, f"{path}: meta missing process/pid"

    records, skipped = [], 0
    for line in lines[1:]:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(rec, dict) or rec.get("record") not in ("span", "instant"):
            skipped += 1
            continue
        try:
            rec["span_id_int"] = int(rec["span_id"], 16)
            rec["parent_id_int"] = int(rec["parent_id"], 16)
            rec["ts_us"] = int(rec["ts_us"])
            rec["dur_us"] = int(rec["dur_us"])
        except (KeyError, TypeError, ValueError):
            skipped += 1
            continue
        records.append(rec)
    return {
        "process": meta["process"],
        "pid": meta["pid"],
        "reason": meta.get("reason", ""),
        "records": records,
        "skipped": skipped,
    }, None


def stitch(dumps):
    """Mirror of the Rust stitcher; returns the trace-event object."""
    anchor = dumps[0]
    anchor_spans = {
        r["span_id_int"]: r["ts_us"] for r in anchor["records"] if r["span_id_int"] != 0
    }
    anchor_min = min((r["ts_us"] for r in anchor["records"]), default=0)

    events = []
    offsets = []
    for i, dump in enumerate(dumps):
        if i == 0:
            offset = 0
        else:
            linked = [
                (anchor_spans[r["parent_id_int"]], r["ts_us"])
                for r in dump["records"]
                if r["parent_id_int"] in anchor_spans
            ]
            if linked:
                parent_ts, child_ts = min(linked, key=lambda pair: pair[1])
                offset = parent_ts - child_ts
            else:
                child_min = min((r["ts_us"] for r in dump["records"]), default=0)
                offset = anchor_min - child_min
        offsets.append(offset)
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": dump["pid"],
                "tid": 0,
                "args": {"name": dump["process"]},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": dump["pid"],
                "tid": 0,
                "args": {"sort_index": i},
            }
        )

    for dump, offset in zip(dumps, offsets):
        for rec in dump["records"]:
            ts = max(rec["ts_us"] + offset, 0)
            args = {
                "trace_id": rec["trace_id"],
                "span_id": rec["span_id"],
                "parent_id": rec["parent_id"],
            }
            extra = rec.get("args")
            if isinstance(extra, dict):
                args.update(extra)
            event = {
                "name": rec["name"],
                "cat": rec["cat"],
                "pid": dump["pid"],
                "tid": 1,
                "ts": ts,
                "args": args,
            }
            if rec["record"] == "span":
                event.update({"ph": "X", "dur": rec["dur_us"]})
            else:
                event.update({"ph": "i", "s": "p"})
            events.append(event)
            if dump["pid"] != anchor["pid"] and rec["parent_id_int"] in anchor_spans:
                events.append(
                    {
                        "ph": "s",
                        "id": rec["parent_id"],
                        "name": "fed_pipe",
                        "cat": "flow",
                        "pid": anchor["pid"],
                        "tid": 1,
                        "ts": anchor_spans[rec["parent_id_int"]],
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": rec["parent_id"],
                        "name": "fed_pipe",
                        "cat": "flow",
                        "pid": dump["pid"],
                        "tid": 1,
                        "ts": ts,
                    }
                )

    return {"displayTimeUnit": "ms", "traceEvents": events}


def expand_inputs(paths):
    """A single directory argument expands to coordinator-then-workers."""
    if len(paths) == 1 and os.path.isdir(paths[0]):
        directory = paths[0]
        names = sorted(os.listdir(directory))
        anchor = [n for n in names if n == "trace_coordinator.jsonl"]
        workers = [n for n in names if n.startswith("trace_worker_") and n.endswith(".jsonl")]
        if not anchor and not workers:
            return None, f"{directory}: no trace_*.jsonl dumps found"
        return [os.path.join(directory, n) for n in anchor + workers], None
    return paths, None


def main() -> int:
    usage = f"usage: {sys.argv[0]} --out STITCHED.json DUMP.jsonl...|TRACE_DIR"
    argv = sys.argv[1:]
    if len(argv) < 3 or argv[0] != "--out":
        print(usage, file=sys.stderr)
        return 2
    out = argv[1]
    inputs, err = expand_inputs(argv[2:])
    if err is not None:
        print(f"FAIL {err}", file=sys.stderr)
        return 1

    dumps = []
    for path in inputs:
        dump, err = parse_dump(path)
        if err is not None:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        tag = f" ({dump['skipped']} torn lines skipped)" if dump["skipped"] else ""
        print(
            f"  {dump['process']} pid={dump['pid']} reason={dump['reason']!r}: "
            f"{len(dump['records'])} records{tag}"
        )
        dumps.append(dump)

    stitched = stitch(dumps)
    with open(out, "w") as f:
        json.dump(stitched, f)
    flows = sum(1 for e in stitched["traceEvents"] if e.get("name") == "fed_pipe")
    print(
        f"trace_stitch: wrote {out} — {len(dumps)} processes, "
        f"{len(stitched['traceEvents'])} events, {flows} flow endpoints"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
