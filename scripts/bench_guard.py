#!/usr/bin/env python3
"""Bench regression guard for the training-throughput report.

Reads a BENCH_train*.json produced by the `train_throughput` binary and
fails (exit 1) if:

  * the benchmark itself recorded a failed check (`all_checks_passed`), or
  * any run's noise + server_update wall-clock share exceeds the
    threshold — the dense phases regressing back towards the
    single-stream sampler would show up here first.

Usage: bench_guard.py REPORT.json [MAX_SHARE]

MAX_SHARE is a fraction (default 0.35). It is deliberately generous:
smoke runs time only a handful of steps, so this guards against the
dense phases swallowing the step, not against millisecond jitter. The
threads=4-beats-threads=1 share comparison is enforced by
train_throughput itself on full runs.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(f"usage: {sys.argv[0]} REPORT.json [MAX_SHARE]", file=sys.stderr)
        return 2
    path = sys.argv[1]
    max_share = float(sys.argv[2]) if len(sys.argv) > 2 else 0.35

    with open(path) as f:
        report = json.load(f)

    ok = True
    if not report.get("all_checks_passed", False):
        print(f"FAIL {path}: benchmark reported all_checks_passed=false")
        ok = False

    runs = report.get("runs", [])
    if not runs:
        print(f"FAIL {path}: no runs recorded")
        ok = False
    for run in runs:
        threads = run.get("threads")
        share = run.get("noise_server_share")
        if share is None:
            print(f"FAIL threads={threads}: report has no noise_server_share")
            ok = False
            continue
        verdict = "PASS" if share <= max_share else "FAIL"
        print(
            f"{verdict} threads={threads}: noise+server share "
            f"{share * 100.0:.2f}% (limit {max_share * 100.0:.0f}%)"
        )
        ok &= share <= max_share

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
