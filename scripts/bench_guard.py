#!/usr/bin/env python3
"""Bench regression guards for the training and serving reports.

Training mode reads a BENCH_train*.json produced by the
`train_throughput` binary and fails (exit 1) if:

  * the report is missing, unreadable, malformed JSON, or structurally
    wrong (not an object, runs not a list, shares not numbers) — a
    broken report must never pass silently, or
  * the benchmark itself recorded a failed check (`all_checks_passed`), or
  * any run's noise + server_update wall-clock share exceeds the
    threshold — the dense phases regressing back towards the
    single-stream sampler would show up here first.

Throughput mode (`--train`) reads the same BENCH_train*.json and guards
the tentpole quantities directly:

  * the `threads == 1` run's `steps_per_sec` must meet the floor — the
    sequential step rate is the anchor the eight-lane kernels and the
    pooled SGNS walk bought, and it must not erode back, and
  * every run's `local_sgd_share` (local_sgd wall / total wall) must
    stay under the ceiling — local_sgd swallowing the step again is the
    regression this PR existed to fix.

Serving mode (`--serve`) reads a BENCH_serve*.json produced by the
`serve_load` binary and fails (exit 1) if:

  * the report is malformed or missing the `ann` section, or
  * ANN recall@10 on the 100k-location city drops below the floor
    (default 0.95) — an index regression fails CI like a perf
    regression does, or
  * the `nprobe = cells` full-probe pass was not bit-identical to the
    exhaustive scan, or ANN results were not worker-invariant.

Hot-swap mode (`--swap`) reads a BENCH_serve*.json produced by
`serve_load --swap` and fails (exit 1) if:

  * the report is malformed or its `swap` section is missing/null (the
    run was made without `--swap`), or
  * any query wave was dropped (`swap.dropped != 0`) or diverged from its
    generation's reference (`swap.torn != 0`) — zero-downtime means zero,
    not "a few", or
  * fewer generations swapped than the floor (default 50; smoke runs
    pass a lower floor), or
  * the bundle was served via mmap (`swap.mapped`) but the mmap load was
    not at least MIN_MMAP_SPEEDUP (default 10) times faster than the
    owned decode, or the mapped bytes were not bit-identical.

Observability mode (`--obs`) reads a BENCH_obs*.json produced by the
`obs_report` binary and fails (exit 1) if:

  * the report is malformed, missing the `trace` section, or the
    benchmark itself recorded a failed check (`all_checks_passed`), or
  * the traced-vs-untraced per-step overhead (`trace.overhead_frac`,
    min-of-repeats on both sides) exceeds the ceiling (default 0.05) —
    tracing is supposed to be a handful of atomic writes per span, so a
    5% step-time regression means instrumentation leaked into the hot
    path.

Usage: bench_guard.py REPORT.json [MAX_SHARE]
       bench_guard.py --train REPORT.json [MIN_STEPS_PER_SEC] [MAX_LOCAL_SGD_SHARE]
       bench_guard.py --serve REPORT.json [MIN_RECALL]
       bench_guard.py --swap REPORT.json [MIN_SWAPS] [MIN_MMAP_SPEEDUP]
       bench_guard.py --obs REPORT.json [MAX_OVERHEAD]

Exit codes: 0 all checks pass, 1 regression or malformed report,
2 usage error.

MAX_SHARE is a fraction (default 0.35). It is deliberately generous:
smoke runs time only a handful of steps, so this guards against the
dense phases swallowing the step, not against millisecond jitter. The
threads=4-beats-threads=1 share comparison is enforced by
train_throughput itself on full runs. MIN_RECALL defaults to 0.95; the
ANN speedup floor is enforced by serve_load itself (its exit code),
because wall-clock ratios are too noisy to re-judge from the report.
MAX_OVERHEAD is a fraction (default 0.05); negative measured overhead
(scheduler noise) passes.
"""

import json
import sys


def fail(path: str, why: str) -> int:
    print(f"FAIL {path}: {why}", file=sys.stderr)
    print("bench_guard: MALFORMED REPORT", file=sys.stderr)
    return 1


def load_report(path: str):
    """Returns (report, None) or (None, exit_code)."""
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        return None, fail(path, f"cannot read report: {e}")
    except json.JSONDecodeError as e:
        return None, fail(path, f"not valid JSON (line {e.lineno}, column {e.colno}): {e.msg}")
    if not isinstance(report, dict):
        return None, fail(path, f"report must be a JSON object, got {type(report).__name__}")
    return report, None


def train_guard(path: str, min_steps_per_sec: float, max_local_sgd_share: float) -> int:
    report, err = load_report(path)
    if err is not None:
        return err

    ok = True
    if not report.get("all_checks_passed", False):
        print(f"FAIL {path}: benchmark reported all_checks_passed=false")
        ok = False

    runs = report.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(path, "'runs' must be a non-empty list")

    saw_sequential = False
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            return fail(path, f"runs[{i}] must be an object, got {type(run).__name__}")
        threads = run.get("threads")
        share = run.get("local_sgd_share")
        if not isinstance(share, (int, float)) or isinstance(share, bool):
            print(f"FAIL runs[{i}] (threads={threads}): local_sgd_share must be a number")
            ok = False
        else:
            verdict = "PASS" if share <= max_local_sgd_share else "FAIL"
            print(
                f"{verdict} threads={threads}: local_sgd share {share * 100.0:.2f}% "
                f"(ceiling {max_local_sgd_share * 100.0:.0f}%)"
            )
            ok &= share <= max_local_sgd_share
        if threads == 1:
            saw_sequential = True
            sps = run.get("steps_per_sec")
            if not isinstance(sps, (int, float)) or isinstance(sps, bool):
                print(f"FAIL runs[{i}] (threads=1): steps_per_sec must be a number")
                ok = False
            else:
                verdict = "PASS" if sps >= min_steps_per_sec else "FAIL"
                print(
                    f"{verdict} threads=1: {sps:.2f} steps/sec "
                    f"(floor {min_steps_per_sec})"
                )
                ok &= sps >= min_steps_per_sec
    if not saw_sequential:
        print(f"FAIL {path}: no threads=1 run to anchor the steps/sec floor")
        ok = False

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


def serve_guard(path: str, min_recall: float) -> int:
    report, err = load_report(path)
    if err is not None:
        return err

    if "ann" not in report:
        return fail(path, "missing required key 'ann'")
    ann = report["ann"]
    if not isinstance(ann, dict):
        return fail(path, f"'ann' must be an object, got {type(ann).__name__}")

    recall = ann.get("recall_at_10")
    if not isinstance(recall, (int, float)) or isinstance(recall, bool):
        return fail(path, f"ann.recall_at_10 must be a number, got {recall!r}")

    ok = True
    verdict = "PASS" if recall >= min_recall else "FAIL"
    print(f"{verdict} ann recall@10 {recall:.4f} (floor {min_recall})")
    ok &= recall >= min_recall

    for key in ("full_probe_bit_identical", "worker_invariant"):
        value = ann.get(key)
        if value is not True:
            print(f"FAIL ann.{key} is {value!r}, expected true")
            ok = False
        else:
            print(f"PASS ann.{key}")

    speedup = ann.get("speedup")
    if isinstance(speedup, (int, float)) and not isinstance(speedup, bool):
        print(f"info ann speedup {speedup:.1f}x (floor enforced by serve_load)")

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


def swap_guard(path: str, min_swaps: int, min_mmap_speedup: float) -> int:
    report, err = load_report(path)
    if err is not None:
        return err

    swap = report.get("swap")
    if not isinstance(swap, dict):
        return fail(path, "missing 'swap' section (run serve_load with --swap)")

    ok = True
    swaps = swap.get("swaps")
    if not isinstance(swaps, int) or isinstance(swaps, bool):
        return fail(path, f"swap.swaps must be an integer, got {swaps!r}")
    verdict = "PASS" if swaps >= min_swaps else "FAIL"
    print(f"{verdict} {swaps} live generation swaps (floor {min_swaps})")
    ok &= swaps >= min_swaps

    for key in ("dropped", "torn"):
        value = swap.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            return fail(path, f"swap.{key} must be an integer, got {value!r}")
        verdict = "PASS" if value == 0 else "FAIL"
        print(f"{verdict} swap.{key} = {value} (must be 0)")
        ok &= value == 0

    if swap.get("bit_identical") is not True:
        print(f"FAIL swap.bit_identical is {swap.get('bit_identical')!r}, expected true")
        ok = False
    else:
        print("PASS swap.bit_identical")

    speedup = swap.get("mmap_speedup")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        return fail(path, f"swap.mmap_speedup must be a number, got {speedup!r}")
    if swap.get("mapped") is True:
        verdict = "PASS" if speedup >= min_mmap_speedup else "FAIL"
        print(f"{verdict} mmap load {speedup:.1f}x faster than owned decode (floor {min_mmap_speedup})")
        ok &= speedup >= min_mmap_speedup
    else:
        print(f"info host served without mmap; speedup {speedup:.1f}x not gated")

    p99s = swap.get("p99_steady_ms")
    p99w = swap.get("p99_swap_window_ms")
    if isinstance(p99s, (int, float)) and isinstance(p99w, (int, float)):
        print(f"info p99 steady {p99s:.3f} ms vs swap-window {p99w:.3f} ms")

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


def obs_guard(path: str, max_overhead: float) -> int:
    report, err = load_report(path)
    if err is not None:
        return err

    ok = True
    if "all_checks_passed" not in report:
        return fail(path, "missing required key 'all_checks_passed'")
    if not report.get("all_checks_passed", False):
        print(f"FAIL {path}: benchmark reported all_checks_passed=false")
        ok = False

    if "trace" not in report:
        return fail(path, "missing required key 'trace'")
    trace = report["trace"]
    if not isinstance(trace, dict):
        return fail(path, f"'trace' must be an object, got {type(trace).__name__}")

    overhead = trace.get("overhead_frac")
    if not isinstance(overhead, (int, float)) or isinstance(overhead, bool):
        return fail(path, f"trace.overhead_frac must be a number, got {overhead!r}")

    untraced = trace.get("untraced_step_ms")
    traced = trace.get("traced_step_ms")
    if isinstance(untraced, (int, float)) and isinstance(traced, (int, float)):
        print(f"info untraced {untraced:.3f} ms/step, traced {traced:.3f} ms/step")
    verdict = "PASS" if overhead <= max_overhead else "FAIL"
    print(
        f"{verdict} tracing overhead {overhead * 100.0:+.2f}% "
        f"(ceiling {max_overhead * 100.0:.0f}%)"
    )
    ok &= overhead <= max_overhead

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


def main() -> int:
    usage = (
        f"usage: {sys.argv[0]} REPORT.json [MAX_SHARE] | --train REPORT.json "
        "[MIN_STEPS_PER_SEC] [MAX_LOCAL_SGD_SHARE] | --serve REPORT.json "
        "[MIN_RECALL] | --swap REPORT.json [MIN_SWAPS] [MIN_MMAP_SPEEDUP] | "
        "--obs REPORT.json [MAX_OVERHEAD]"
    )
    if len(sys.argv) >= 2 and sys.argv[1] == "--train":
        if len(sys.argv) < 3:
            print(usage, file=sys.stderr)
            return 2
        try:
            min_sps = float(sys.argv[3]) if len(sys.argv) > 3 else 35.9
            max_sgd_share = float(sys.argv[4]) if len(sys.argv) > 4 else 0.65
        except ValueError:
            print("usage: --train thresholds must be numbers", file=sys.stderr)
            return 2
        if min_sps <= 0.0 or not 0.0 < max_sgd_share <= 1.0:
            print(
                f"usage: need MIN_STEPS_PER_SEC > 0 and MAX_LOCAL_SGD_SHARE in (0, 1], "
                f"got {min_sps} and {max_sgd_share}",
                file=sys.stderr,
            )
            return 2
        return train_guard(sys.argv[2], min_sps, max_sgd_share)
    if len(sys.argv) >= 2 and sys.argv[1] == "--obs":
        if len(sys.argv) < 3:
            print(usage, file=sys.stderr)
            return 2
        try:
            max_overhead = float(sys.argv[3]) if len(sys.argv) > 3 else 0.05
        except ValueError:
            print(
                f"usage: MAX_OVERHEAD must be a number, got {sys.argv[3]!r}",
                file=sys.stderr,
            )
            return 2
        if not 0.0 < max_overhead <= 1.0:
            print(f"usage: MAX_OVERHEAD must be in (0, 1], got {max_overhead}", file=sys.stderr)
            return 2
        return obs_guard(sys.argv[2], max_overhead)
    if len(sys.argv) >= 2 and sys.argv[1] == "--swap":
        if len(sys.argv) < 3:
            print(usage, file=sys.stderr)
            return 2
        try:
            min_swaps = int(sys.argv[3]) if len(sys.argv) > 3 else 50
            min_mmap_speedup = float(sys.argv[4]) if len(sys.argv) > 4 else 10.0
        except ValueError:
            print("usage: --swap thresholds must be numbers", file=sys.stderr)
            return 2
        if min_swaps < 1 or min_mmap_speedup <= 0.0:
            print(
                f"usage: need MIN_SWAPS >= 1 and MIN_MMAP_SPEEDUP > 0, "
                f"got {min_swaps} and {min_mmap_speedup}",
                file=sys.stderr,
            )
            return 2
        return swap_guard(sys.argv[2], min_swaps, min_mmap_speedup)
    if len(sys.argv) >= 2 and sys.argv[1] == "--serve":
        if len(sys.argv) < 3:
            print(usage, file=sys.stderr)
            return 2
        try:
            min_recall = float(sys.argv[3]) if len(sys.argv) > 3 else 0.95
        except ValueError:
            print(
                f"usage: MIN_RECALL must be a number, got {sys.argv[3]!r}",
                file=sys.stderr,
            )
            return 2
        if not 0.0 < min_recall <= 1.0:
            print(f"usage: MIN_RECALL must be in (0, 1], got {min_recall}", file=sys.stderr)
            return 2
        return serve_guard(sys.argv[2], min_recall)

    if len(sys.argv) < 2:
        print(usage, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        max_share = float(sys.argv[2]) if len(sys.argv) > 2 else 0.35
    except ValueError:
        print(f"usage: MAX_SHARE must be a number, got {sys.argv[2]!r}", file=sys.stderr)
        return 2
    if not 0.0 < max_share <= 1.0:
        print(f"usage: MAX_SHARE must be in (0, 1], got {max_share}", file=sys.stderr)
        return 2

    report, err = load_report(path)
    if err is not None:
        return err

    ok = True
    if "all_checks_passed" not in report:
        return fail(path, "missing required key 'all_checks_passed'")
    if not report.get("all_checks_passed", False):
        print(f"FAIL {path}: benchmark reported all_checks_passed=false")
        ok = False

    if "runs" not in report:
        return fail(path, "missing required key 'runs'")
    runs = report["runs"]
    if not isinstance(runs, list):
        return fail(path, f"'runs' must be a list, got {type(runs).__name__}")
    if not runs:
        print(f"FAIL {path}: no runs recorded")
        ok = False
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            return fail(path, f"runs[{i}] must be an object, got {type(run).__name__}")
        threads = run.get("threads")
        share = run.get("noise_server_share")
        if share is None:
            print(f"FAIL runs[{i}] (threads={threads}): missing key 'noise_server_share'")
            ok = False
            continue
        if not isinstance(share, (int, float)) or isinstance(share, bool):
            print(
                f"FAIL runs[{i}] (threads={threads}): noise_server_share must be "
                f"a number, got {share!r}"
            )
            ok = False
            continue
        verdict = "PASS" if share <= max_share else "FAIL"
        print(
            f"{verdict} threads={threads}: noise+server share "
            f"{share * 100.0:.2f}% (limit {max_share * 100.0:.0f}%)"
        )
        ok &= share <= max_share

    print("bench_guard:", "ok" if ok else "REGRESSION")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
