//! `dp-nextloc` — command-line front end for the PLP system.
//!
//! Subcommands:
//!
//! * `generate`  — synthesise a check-in dataset and write a binary snapshot,
//! * `stats`     — print dataset statistics (§5.1 profile),
//! * `train`     — train `plp` | `dpsgd` | `nonprivate` and save the model
//!   (plus the auditable privacy ledger for the private methods),
//! * `evaluate`  — leave-one-out HR@k of a saved model on held-out users,
//! * `recommend` — top-k next locations for a token sequence,
//! * `budget`    — moments-accountant planning (steps afforded / ε of a plan).
//!
//! Run `dp-nextloc <subcommand> --help` for flags.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use plp_core::config::Hyperparameters;
use plp_core::dpsgd::train_dpsgd;
use plp_core::experiment::{evaluate, ExperimentConfig, PreparedData};
use plp_core::nonprivate::{train_nonprivate, NonPrivateConfig};
use plp_core::plp::train_plp;
use plp_data::generator::{GeneratorConfig, SyntheticGenerator};
use plp_data::io as data_io;
use plp_data::stats::dataset_stats;
use plp_model::snapshot;
use plp_model::Recommender;
use plp_privacy::planner::{epsilon_for_steps, max_steps};
use plp_privacy::PrivacyBudget;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "train" => cmd_train(rest),
        "evaluate" => cmd_evaluate(rest),
        "recommend" => cmd_recommend(rest),
        "budget" => cmd_budget(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "dp-nextloc — differentially-private next-location prediction (EDBT 2020)

USAGE:
  dp-nextloc generate  --out data.bin [--profile small|medium|paper] [--seed N] [--csv out.csv]
  dp-nextloc stats     --data data.bin
  dp-nextloc train     --data data.bin --out model.plpm [--method plp|dpsgd|nonprivate]
                       [--eps F] [--delta F] [--sigma F] [--q F] [--lambda N] [--clip F]
                       [--dim N] [--neg N] [--max-steps N] [--epochs N] [--seed N]
                       [--ledger ledger.json]
  dp-nextloc evaluate  --data data.bin --model model.plpm [--k 5,10,20] [--seed N]
  dp-nextloc recommend --model model.plpm --recent 12,87,40 [--k 10]
  dp-nextloc budget    --q F --sigma F (--eps F | --steps N) [--delta F]";

/// Minimal `--flag value` parser; every flag takes exactly one value.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            return Err(format!("expected a --flag, found `{flag}`"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag `{flag}` is missing its value"))?;
        out.insert(flag.trim_start_matches("--").to_string(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn req<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn opt_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for --{name}")),
    }
}

fn profile(name: &str) -> Result<GeneratorConfig, String> {
    match name {
        "small" => Ok(GeneratorConfig::small()),
        "medium" => Ok(GeneratorConfig::medium()),
        "paper" => Ok(GeneratorConfig::default()),
        other => Err(format!("unknown profile `{other}` (small|medium|paper)")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = PathBuf::from(req(&flags, "out")?);
    let seed: u64 = opt_parse(&flags, "seed", 42)?;
    let config = profile(flags.get("profile").map(String::as_str).unwrap_or("medium"))?;
    let ds = SyntheticGenerator::generate_with_seed(config, seed).map_err(|e| e.to_string())?;
    data_io::save_binary(&ds, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} check-ins / {} users / {} POIs to {}",
        ds.num_checkins(),
        ds.num_users(),
        ds.pois.len(),
        out.display()
    );
    if let Some(csv) = flags.get("csv") {
        std::fs::write(csv, data_io::checkins_to_csv(&ds)).map_err(|e| e.to_string())?;
        println!("wrote CSV export to {csv}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let ds = data_io::load_binary(Path::new(req(&flags, "data")?)).map_err(|e| e.to_string())?;
    let s = dataset_stats(&ds);
    println!(
        "{}",
        serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn prepare(flags: &HashMap<String, String>) -> Result<PreparedData, String> {
    let ds = data_io::load_binary(Path::new(req(flags, "data")?)).map_err(|e| e.to_string())?;
    let seed: u64 = opt_parse(flags, "seed", 42)?;
    let holdout = opt_parse(flags, "holdout", 100usize)?.min(ds.num_users() / 3);
    let mut cfg = ExperimentConfig::paper_scale(seed);
    cfg.validation_users = holdout;
    cfg.test_users = holdout;
    PreparedData::from_checkins(&ds, &cfg).map_err(|e| e.to_string())
}

fn hyperparameters(flags: &HashMap<String, String>) -> Result<Hyperparameters, String> {
    let mut hp = Hyperparameters::default();
    hp.embedding_dim = opt_parse(flags, "dim", hp.embedding_dim)?;
    hp.negative_samples = opt_parse(flags, "neg", hp.negative_samples)?;
    hp.context_window = opt_parse(flags, "win", hp.context_window)?;
    hp.batch_size = opt_parse(flags, "batch", hp.batch_size)?;
    hp.learning_rate = opt_parse(flags, "lr", hp.learning_rate)?;
    hp.sampling_prob = opt_parse(flags, "q", hp.sampling_prob)?;
    hp.noise_multiplier = opt_parse(flags, "sigma", hp.noise_multiplier)?;
    hp.clip_norm = opt_parse(flags, "clip", hp.clip_norm)?;
    hp.grouping_factor = opt_parse(flags, "lambda", hp.grouping_factor)?;
    hp.max_steps = opt_parse(flags, "max-steps", hp.max_steps)?;
    let eps = opt_parse(flags, "eps", hp.budget.epsilon)?;
    let delta = opt_parse(flags, "delta", hp.budget.delta)?;
    hp.budget = PrivacyBudget::new(eps, delta).map_err(|e| e.to_string())?;
    hp.validate().map_err(|e| e.to_string())?;
    Ok(hp)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = PathBuf::from(req(&flags, "out")?);
    let method = flags.get("method").map(String::as_str).unwrap_or("plp");
    let seed: u64 = opt_parse(&flags, "seed", 42)?;
    let prep = prepare(&flags)?;
    let hp = hyperparameters(&flags)?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));

    let (params, ledger) = match method {
        "plp" | "dpsgd" => {
            let outcome = if method == "plp" {
                train_plp(&mut rng, &prep.train, None, &hp).map_err(|e| e.to_string())?
            } else {
                train_dpsgd(&mut rng, &prep.train, None, &hp).map_err(|e| e.to_string())?
            };
            println!(
                "{method}: {} steps, eps spent {:.4} (budget {}), stop {:?}",
                outcome.summary.steps,
                outcome.summary.epsilon_spent,
                hp.budget.epsilon,
                outcome.summary.stop_reason
            );
            (outcome.params, Some(outcome.ledger))
        }
        "nonprivate" => {
            let epochs = opt_parse(&flags, "epochs", 20usize)?;
            let outcome = train_nonprivate(
                &mut rng,
                &prep.train,
                None,
                &hp,
                &NonPrivateConfig {
                    epochs,
                    ..NonPrivateConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            println!(
                "nonprivate: {} epochs, final loss {:.4}",
                epochs,
                outcome
                    .telemetry
                    .last()
                    .map(|t| t.train_loss)
                    .unwrap_or(0.0)
            );
            (outcome.params, None)
        }
        other => return Err(format!("unknown method `{other}` (plp|dpsgd|nonprivate)")),
    };

    snapshot::save_params(&params, &out).map_err(|e| e.to_string())?;
    println!("model saved to {}", out.display());
    if let (Some(ledger), Some(path)) = (&ledger, flags.get("ledger")) {
        let json = serde_json::to_string_pretty(ledger).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("privacy ledger written to {path}");
    }
    // Quick quality readout on the held-out users.
    let hr = evaluate(&params, &prep.test, &[5, 10, 20]).map_err(|e| e.to_string())?;
    for h in &hr {
        println!("test HR@{:<2} = {:.4}", h.k, h.rate());
    }
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let params =
        snapshot::load_params(Path::new(req(&flags, "model")?)).map_err(|e| e.to_string())?;
    let prep = prepare(&flags)?;
    let ks: Vec<usize> = flags
        .get("k")
        .map(String::as_str)
        .unwrap_or("5,10,20")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad k `{s}`")))
        .collect::<Result<_, _>>()?;
    let hr = evaluate(&params, &prep.test, &ks).map_err(|e| e.to_string())?;
    for h in &hr {
        println!("HR@{:<3} = {:.4}  ({}/{})", h.k, h.rate(), h.hits, h.trials);
    }
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let params =
        snapshot::load_params(Path::new(req(&flags, "model")?)).map_err(|e| e.to_string())?;
    let recent: Vec<usize> = req(&flags, "recent")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad token `{s}`")))
        .collect::<Result<_, _>>()?;
    let k: usize = opt_parse(&flags, "k", 10)?;
    let rec = Recommender::new(&params);
    let top = rec.recommend(&recent, k).map_err(|e| e.to_string())?;
    println!("recent: {recent:?}");
    println!("top-{k}: {top:?}");
    Ok(())
}

fn cmd_budget(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let q: f64 = req(&flags, "q")?
        .parse()
        .map_err(|_| "bad --q".to_string())?;
    let sigma: f64 = req(&flags, "sigma")?
        .parse()
        .map_err(|_| "bad --sigma".to_string())?;
    let delta: f64 = opt_parse(&flags, "delta", 2e-4)?;
    match (flags.get("eps"), flags.get("steps")) {
        (Some(eps), None) => {
            let eps: f64 = eps.parse().map_err(|_| "bad --eps".to_string())?;
            let budget = PrivacyBudget::new(eps, delta).map_err(|e| e.to_string())?;
            let steps = max_steps(q, sigma, budget).map_err(|e| e.to_string())?;
            println!("(eps={eps}, delta={delta}) affords {steps} steps at q={q}, sigma={sigma}");
        }
        (None, Some(steps)) => {
            let steps: u64 = steps.parse().map_err(|_| "bad --steps".to_string())?;
            let eps = epsilon_for_steps(q, sigma, steps, delta).map_err(|e| e.to_string())?;
            println!("{steps} steps at q={q}, sigma={sigma} cost eps={eps:.4} (delta={delta})");
        }
        _ => return Err("provide exactly one of --eps or --steps".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(v: &[(&str, &str)]) -> HashMap<String, String> {
        v.iter()
            .map(|(k, x)| (k.to_string(), x.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_accepts_pairs_and_rejects_stragglers() {
        let args: Vec<String> = ["--out", "x.bin", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["out"], "x.bin");
        assert_eq!(f["seed"], "7");
        let bad: Vec<String> = ["--out"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&bad).is_err());
        let bad: Vec<String> = ["out", "x"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&bad).is_err());
    }

    #[test]
    fn opt_parse_defaults_and_errors() {
        let f = flags(&[("dim", "32")]);
        assert_eq!(opt_parse(&f, "dim", 50usize).unwrap(), 32);
        assert_eq!(opt_parse(&f, "neg", 16usize).unwrap(), 16);
        let bad = flags(&[("dim", "abc")]);
        assert!(opt_parse(&bad, "dim", 50usize).is_err());
    }

    #[test]
    fn hyperparameters_from_flags() {
        let f = flags(&[("eps", "3.0"), ("lambda", "6"), ("sigma", "1.5")]);
        let hp = hyperparameters(&f).unwrap();
        assert_eq!(hp.budget.epsilon, 3.0);
        assert_eq!(hp.grouping_factor, 6);
        assert_eq!(hp.noise_multiplier, 1.5);
        // Invalid combos are rejected by validation.
        let f = flags(&[("q", "2.0")]);
        assert!(hyperparameters(&f).is_err());
    }

    #[test]
    fn profile_names() {
        assert!(profile("small").is_ok());
        assert!(profile("medium").is_ok());
        assert!(profile("paper").is_ok());
        assert!(profile("huge").is_err());
    }

    #[test]
    fn generate_stats_train_evaluate_recommend_round_trip() {
        let dir = std::env::temp_dir().join("dp_nextloc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.bin");
        let model = dir.join("model.plpm");
        let ledger = dir.join("ledger.json");

        // generate a tiny custom dataset by writing it directly (the small
        // profile is too big for a unit test).
        let cfg = GeneratorConfig {
            num_users: 80,
            num_locations: 60,
            target_checkins: 2500,
            num_clusters: 4,
            ..GeneratorConfig::default()
        };
        let ds = SyntheticGenerator::generate_with_seed(cfg, 1).unwrap();
        data_io::save_binary(&ds, &data).unwrap();

        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        cmd_stats(&s(&["--data", data.to_str().unwrap()])).unwrap();
        cmd_train(&s(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
            "--method",
            "plp",
            "--dim",
            "8",
            "--neg",
            "4",
            "--q",
            "0.2",
            "--max-steps",
            "2",
            "--eps",
            "50",
            "--delta",
            "0.005",
            "--holdout",
            "8",
        ]))
        .unwrap();
        assert!(model.exists());
        assert!(ledger.exists());
        cmd_evaluate(&s(&[
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--holdout",
            "8",
            "--k",
            "5,10",
        ]))
        .unwrap();
        cmd_recommend(&s(&[
            "--model",
            model.to_str().unwrap(),
            "--recent",
            "1,2,3",
            "--k",
            "5",
        ]))
        .unwrap();
        cmd_budget(&s(&["--q", "0.06", "--sigma", "2.5", "--eps", "2.0"])).unwrap();
        cmd_budget(&s(&["--q", "0.06", "--sigma", "2.5", "--steps", "100"])).unwrap();
        assert!(cmd_budget(&s(&["--q", "0.06", "--sigma", "2.5"])).is_err());
    }

    #[test]
    fn unknown_method_is_rejected() {
        let dir = std::env::temp_dir().join("dp_nextloc_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.bin");
        let cfg = GeneratorConfig {
            num_users: 40,
            num_locations: 30,
            target_checkins: 900,
            num_clusters: 3,
            ..GeneratorConfig::default()
        };
        let ds = SyntheticGenerator::generate_with_seed(cfg, 2).unwrap();
        data_io::save_binary(&ds, &data).unwrap();
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        let r = cmd_train(&s(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            dir.join("m.plpm").to_str().unwrap(),
            "--method",
            "magic",
            "--holdout",
            "5",
        ]));
        assert!(r.is_err());
    }
}
