//! Umbrella crate re-exporting the PLP (Private Location Prediction)
//! workspace: a Rust reproduction of "Differentially-Private Next-Location
//! Prediction with Neural Networks" (Ahuja, Ghinita, Shahabi — EDBT 2020).
//!
//! See the individual crates for the actual implementation:
//! [`plp_core`] (Algorithm 1 and baselines), [`plp_model`] (skip-gram),
//! [`plp_privacy`] (moments accountant), [`plp_data`] (datasets) and
//! [`plp_linalg`] (numeric kernels).

pub use plp_core as core;
pub use plp_data as data;
pub use plp_linalg as linalg;
pub use plp_model as model;
pub use plp_privacy as privacy;
